"""Equivalence-pair checking against the SAT solver.

Two modes:

* **Incremental** (default): one CDCL solver holds the Tseitin encoding of
  every cone touched so far; each pair query adds miter clauses guarded by
  a fresh selector literal and solves under that assumption.  Learnt
  clauses persist across queries — the trick that makes SAT sweeping
  practical (and what MiniSat-inside-ABC does).
* **Fresh**: a new solver and cone encoding per query; slower but simpler,
  kept for cross-checking the incremental path.

Robustness: each query honours an optional :class:`Budget` (deadline,
conflict, and SAT-call caps), and a :class:`TransientSolverError` from the
solver is retried with a *fresh* solver a bounded number of times before
the query degrades to UNKNOWN — never to a fabricated verdict.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import TransientSolverError
from repro.network.network import Network
from repro.runtime.budget import Budget
from repro.sat.compiled import solver_class
from repro.sat.solver import CdclSolver, SatResult
from repro.sat.tseitin import TseitinEncoder, pair_miter
from repro.simulation.patterns import InputVector

#: Sentinel so ``check(..., conflict_limit=None)`` can mean "unbounded".
_DEFAULT_LIMIT = object()


@dataclass(slots=True)
class CheckerStats:
    """Counters a sweep reports from its SAT phase."""

    calls: int = 0
    sat_time: float = 0.0
    proven: int = 0
    disproven: int = 0
    unknown: int = 0
    #: CDCL conflicts consumed across all queries (pool workers report the
    #: per-query delta back so the parent can charge the shared budget).
    conflicts: int = 0
    #: Unit propagations consumed across all queries — the work unit the
    #: compiled/reference backend identity is asserted on.
    propagations: int = 0
    #: Transient solver faults recovered by a fresh-solver retry.
    retries: int = 0


class PairChecker:
    """Answers "are these two nodes equivalent?" queries."""

    def __init__(
        self,
        network: Network,
        conflict_limit: Optional[int] = 20000,
        incremental: bool = True,
        budget: Optional[Budget] = None,
        solver_factory: Optional[Callable[[], CdclSolver]] = None,
        max_retries: int = 2,
        sat_backend: str = "compiled",
    ):
        self.network = network
        self.conflict_limit = conflict_limit
        self.incremental = incremental
        self.budget = budget
        self.max_retries = max_retries
        # An explicit factory (fault injection, cross-checking) wins; the
        # backend name otherwise picks the compiled or reference solver.
        self._solver_factory = solver_factory or solver_class(sat_backend)
        self.stats = CheckerStats()
        #: Solver counters accumulated across fresh-mode queries (the
        #: per-query solvers are otherwise discarded with their stats).
        self._fresh_stats: dict = {}
        if incremental:
            self._solver = self._solver_factory()
            self._encoder = TseitinEncoder(network)
            self._clauses_loaded = 0

    @property
    def solver_stats(self) -> dict:
        """Counters of the underlying CDCL solver(s) (decisions, conflicts,
        propagations, restarts, solve seconds, ...) for registry export."""
        if self.incremental:
            return dict(getattr(self._solver, "stats", {}) or {})
        return dict(self._fresh_stats)

    # ------------------------------------------------------------------
    def check(
        self,
        node_a: int,
        node_b: int,
        complement: bool = False,
        conflict_limit=_DEFAULT_LIMIT,
    ) -> tuple[SatResult, Optional[InputVector]]:
        """One equivalence query.

        Returns ``(UNSAT, None)`` when the nodes are proven equivalent
        (or complement-equivalent when ``complement``), ``(SAT, vector)``
        with a distinguishing input vector otherwise, or
        ``(UNKNOWN, None)`` at the conflict budget / deadline / after the
        solver-retry budget.

        Args:
            conflict_limit: Per-call override of the checker-wide limit
                (``None`` = unbounded); escalation ladders use this to
                retry abandoned pairs with a larger budget.
        """
        limit = (
            self.conflict_limit if conflict_limit is _DEFAULT_LIMIT
            else conflict_limit
        )
        start = time.perf_counter()
        result: SatResult = SatResult.UNKNOWN
        vector: Optional[InputVector] = None
        try:
            if self.budget is None or not self.budget.expired():
                if self.budget is not None:
                    self.budget.charge_sat_call()
                result, vector = self._check_with_retries(
                    node_a, node_b, complement, limit
                )
            return result, vector
        finally:
            # The stats window closes on *every* exit path — deadline,
            # KeyboardInterrupt mid-solve, worker teardown — so this clock
            # (the single owner of SAT seconds) never leaks an open window;
            # an aborted query is recorded as an UNKNOWN call.
            self.stats.calls += 1
            self.stats.sat_time += time.perf_counter() - start
            if result is SatResult.UNSAT:
                self.stats.proven += 1
            elif result is SatResult.SAT:
                self.stats.disproven += 1
            else:
                self.stats.unknown += 1

    def _check_with_retries(
        self, node_a: int, node_b: int, complement: bool, limit: Optional[int]
    ) -> tuple[SatResult, Optional[InputVector]]:
        attempts = 0
        while True:
            try:
                if self.incremental:
                    return self._check_incremental(
                        node_a, node_b, complement, limit
                    )
                return self._check_fresh(node_a, node_b, complement, limit)
            except TransientSolverError:
                # The failing solver is poisoned; rebuild and retry.
                self.stats.retries += 1
                attempts += 1
                if self.incremental:
                    self._rebuild_incremental()
                if attempts > self.max_retries:
                    return SatResult.UNKNOWN, None

    def _rebuild_incremental(self) -> None:
        """Fresh solver, re-fed every Tseitin clause encoded so far.

        Selector-guarded miter clauses of past queries live only in the
        dead solver; they were retired anyway, so dropping them is safe.
        """
        self._solver = self._solver_factory()
        self._clauses_loaded = 0

    # ------------------------------------------------------------------
    def _check_fresh(
        self, node_a: int, node_b: int, complement: bool, limit: Optional[int]
    ) -> tuple[SatResult, Optional[InputVector]]:
        cnf, encoder = pair_miter(self.network, node_a, node_b, complement)
        solver = self._solver_factory()
        solver.add_cnf(cnf)
        result = solver.solve(conflict_limit=limit, budget=self.budget)
        self.stats.conflicts += solver.stats.get("conflicts", 0)
        self.stats.propagations += solver.stats.get("propagations", 0)
        for key, value in solver.stats.items():
            if isinstance(value, (int, float)):
                self._fresh_stats[key] = self._fresh_stats.get(key, 0) + value
        if result is SatResult.SAT:
            return result, encoder.model_to_vector(solver.model())
        return result, None

    def _check_incremental(
        self, node_a: int, node_b: int, complement: bool, limit: Optional[int]
    ) -> tuple[SatResult, Optional[InputVector]]:
        var_a = self._encoder.encode_cone(node_a)
        var_b = self._encoder.encode_cone(node_b)
        # Ship newly produced Tseitin clauses to the solver.
        clauses = self._encoder.cnf.clauses
        while self._clauses_loaded < len(clauses):
            self._solver.add_clause(clauses[self._clauses_loaded])
            self._clauses_loaded += 1
        # Allocate the selector from the shared CNF so later cone encodings
        # never reuse its index (the solver sizes itself from the clauses).
        selector = self._encoder.cnf.new_var()
        if complement:
            # Under the selector, assert the nodes are EQUAL (SAT would
            # refute the complement-equivalence candidate).
            self._solver.add_clause([-selector, var_a, -var_b])
            self._solver.add_clause([-selector, -var_a, var_b])
        else:
            self._solver.add_clause([-selector, var_a, var_b])
            self._solver.add_clause([-selector, -var_a, -var_b])
        before = self._solver.stats
        before_conflicts = before.get("conflicts", 0)
        before_props = before.get("propagations", 0)
        result = self._solver.solve(
            assumptions=[selector], conflict_limit=limit, budget=self.budget
        )
        after = self._solver.stats
        self.stats.conflicts += after.get("conflicts", 0) - before_conflicts
        self.stats.propagations += after.get("propagations", 0) - before_props
        vector = None
        if result is SatResult.SAT:
            vector = self._encoder.model_to_vector(self._solver.model())
        # Retire the selector so this miter never constrains later queries.
        self._solver.add_clause([-selector])
        return result, vector
