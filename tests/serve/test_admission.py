"""AdmissionQueue: budgets, fairness, aging, determinism."""

import threading

from repro.serve import AdmissionQueue, ClientBudget


def drain(queue):
    order = []
    while queue.depth:
        order.append(queue.pop(timeout=0))
    return order


class TestBudgets:
    def test_over_budget_submit_refused(self):
        queue = AdmissionQueue(default_budget=ClientBudget(max_pending=2))
        assert queue.submit("a", "j1")
        assert queue.submit("a", "j2")
        assert not queue.submit("a", "j3")
        assert queue.stats.rejected == 1
        # Other clients are unaffected by a's exhaustion.
        assert queue.submit("b", "j4")

    def test_finish_frees_budget(self):
        queue = AdmissionQueue(default_budget=ClientBudget(max_pending=1))
        assert queue.submit("a", "j1")
        assert not queue.submit("a", "j2")
        assert queue.pop(timeout=0) == "j1"
        # Still in flight until finish: budget covers queued + running.
        assert not queue.submit("a", "j2")
        queue.finish("a")
        assert queue.submit("a", "j2")

    def test_per_client_budget_override(self):
        queue = AdmissionQueue(default_budget=ClientBudget(max_pending=1))
        queue.set_budget("big", ClientBudget(max_pending=3))
        assert queue.budget_for("big").max_pending == 3
        assert queue.budget_for("other").max_pending == 1
        for i in range(3):
            assert queue.submit("big", f"j{i}")
        assert not queue.submit("big", "j3")


class TestSchedule:
    def test_single_client_is_fifo(self):
        queue = AdmissionQueue()
        for i in range(4):
            queue.submit("a", f"j{i}")
        assert drain(queue) == ["j0", "j1", "j2", "j3"]

    def test_loaded_client_yields_to_newcomer(self):
        """A client with jobs still *running* is penalised at submit."""
        queue = AdmissionQueue()
        for i in range(3):
            queue.submit("a", f"a{i}")
        # Two of a's jobs dispatch and are still running (not finished).
        assert queue.pop(timeout=0) == "a0"
        assert queue.pop(timeout=0) == "a1"
        queue.submit("a", "a3")  # penalty: 3 jobs in flight
        queue.submit("b", "b0")  # penalty: 0
        assert queue.pop(timeout=0) == "a2"  # submitted first, aged to 0
        # b jumps a's backlog despite the later sequence number.
        assert queue.pop(timeout=0) == "b0"
        assert queue.pop(timeout=0) == "a3"
        assert queue.stats.aged > 0

    def test_burst_penalty_ages_away(self):
        """No starvation: every pass-over erodes the penalty by one."""
        queue = AdmissionQueue(penalty_per_pending=5)
        queue.submit("a", "a0")
        queue.submit("a", "a1")  # penalty 5: one job already in flight
        assert queue.pop(timeout=0) == "a0"  # a1 ages to 4
        order = []
        for _ in range(8):
            queue.submit("b", f"b{len(order)}")
            order.append(queue.pop(timeout=0))
            queue.finish("b")
        # Four b's pass a1 (eroding 4 -> 0); then a1 wins on sequence.
        assert order[:5] == ["b0", "b1", "b2", "b3", "a1"]

    def test_deterministic_replay(self):
        def schedule():
            queue = AdmissionQueue(penalty_per_pending=2)
            order = []
            queue.submit("a", "a0")
            queue.submit("a", "a1")
            queue.submit("b", "b0")
            order.append(queue.pop(timeout=0))
            queue.submit("a", "a2")
            queue.submit("c", "c0")
            while queue.depth:
                order.append(queue.pop(timeout=0))
            return order

        assert schedule() == schedule()


class TestLifecycle:
    def test_close_wakes_blocked_pop(self):
        queue = AdmissionQueue()
        answers = []
        thread = threading.Thread(
            target=lambda: answers.append(queue.pop(timeout=30))
        )
        thread.start()
        queue.close()
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert answers == [None]

    def test_closed_queue_refuses_submits(self):
        queue = AdmissionQueue()
        queue.close()
        assert not queue.submit("a", "j")

    def test_pop_timeout_returns_none(self):
        queue = AdmissionQueue()
        assert queue.pop(timeout=0.01) is None
