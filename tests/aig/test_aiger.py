"""AIGER ASCII (.aag) I/O."""

import pytest

from repro.aig import Aig, lit_not, network_to_aig
from repro.aig.aiger import aag_text, parse_aag
from repro.errors import ParseError
from tests.conftest import random_network

SIMPLE = """\
aag 3 2 0 1 1
2
4
6
6 2 4
i0 a
i1 b
o0 f
"""


def aig_function(aig, num_inputs):
    """Exhaustive PO values, pattern-indexed."""
    outputs = {}
    for m in range(1 << num_inputs):
        values = {pi: (m >> i) & 1 for i, pi in enumerate(aig.pis)}
        for name, value in aig.evaluate(values).items():
            outputs.setdefault(name, []).append(value)
    return outputs


class TestParse:
    def test_simple_and(self):
        aig = parse_aag(SIMPLE)
        assert len(aig.pis) == 2
        assert aig.num_ands == 1
        outputs = aig_function(aig, 2)
        assert outputs["f"] == [0, 0, 0, 1]

    def test_names_recovered(self):
        aig = parse_aag(SIMPLE)
        assert aig.node(aig.pis[0]).name == "a"
        assert aig.pos[0][0] == "f"

    def test_complemented_output(self):
        text = "aag 3 2 0 1 1\n2\n4\n7\n6 2 4\n"
        aig = parse_aag(text)
        outputs = aig_function(aig, 2)
        assert outputs["po0"] == [1, 1, 1, 0]  # NAND

    def test_constant_output(self):
        text = "aag 1 1 0 1 0\n2\n1\n"
        aig = parse_aag(text)
        outputs = aig_function(aig, 1)
        assert outputs["po0"] == [1, 1]

    def test_bad_header(self):
        with pytest.raises(ParseError):
            parse_aag("aig 1 1 0 1 0\n2\n2\n")

    def test_latches_rejected(self):
        with pytest.raises(ParseError):
            parse_aag("aag 2 1 1 0 0\n2\n4 2\n")

    def test_truncated_body(self):
        with pytest.raises(ParseError):
            parse_aag("aag 3 2 0 1 1\n2\n4\n")

    def test_use_before_definition(self):
        text = "aag 3 1 0 1 1\n2\n6\n6 4 2\n"
        with pytest.raises(ParseError):
            parse_aag(text)


class TestRoundtrip:
    @pytest.mark.parametrize("seed", range(4))
    def test_network_aig_aag_roundtrip(self, seed):
        net = random_network(seed=seed, num_inputs=4, num_gates=12)
        aig = network_to_aig(net)
        parsed = parse_aag(aag_text(aig))
        assert aig_function(aig, 4) == aig_function(parsed, 4)

    def test_handmade_roundtrip(self):
        aig = Aig()
        a = aig.add_pi("a")
        b = aig.add_pi("b")
        g = aig.xor_(a, lit_not(b))
        aig.add_po(g, "xnor_out")
        parsed = parse_aag(aag_text(aig))
        assert parsed.pos[0][0] == "xnor_out"
        assert aig_function(aig, 2) == aig_function(parsed, 2)

    def test_header_counts_consistent(self):
        aig = Aig()
        a, b, c = (aig.add_pi() for _ in range(3))
        aig.add_po(aig.and_(aig.or_(a, b), c))
        text = aag_text(aig)
        header = text.splitlines()[0].split()
        max_var, inputs, latches, outputs, ands = map(int, header[1:])
        assert inputs == 3
        assert latches == 0
        assert outputs == 1
        assert ands == aig.num_ands
        assert max_var == inputs + ands
