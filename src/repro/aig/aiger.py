"""AIGER ASCII (.aag) reader and writer.

AIGER is the interchange format of the hardware model-checking world
(and of ABC's ``&r``/``&w``).  The combinational ASCII subset is
supported: header ``aag M I L O A`` with L = 0, one literal per input
line, one per output line, and ``lhs rhs0 rhs1`` AND lines.  Symbol-table
entries (``i0 name`` / ``o0 name``) and comments are honored.
"""

from __future__ import annotations

from typing import TextIO

from repro.aig.aig import Aig, lit, lit_node, lit_phase
from repro.errors import ParseError


def write_aag(aig: Aig, handle: TextIO) -> None:
    """Serialize an AIG in ASCII AIGER format.

    Node indices are compacted so that inputs occupy variables
    ``1..I`` and ANDs ``I+1..I+A``, as the format requires.
    """
    remap: dict[int, int] = {0: 0}
    for position, index in enumerate(aig.pis, start=1):
        remap[index] = position
    and_nodes = list(aig.ands())
    for position, node in enumerate(and_nodes, start=len(aig.pis) + 1):
        remap[node.index] = position

    def map_lit(literal: int) -> int:
        return lit(remap[lit_node(literal)], lit_phase(literal))

    max_var = len(aig.pis) + len(and_nodes)
    handle.write(
        f"aag {max_var} {len(aig.pis)} 0 {len(aig.pos)} {len(and_nodes)}\n"
    )
    for index in aig.pis:
        handle.write(f"{lit(remap[index])}\n")
    for _, literal in aig.pos:
        handle.write(f"{map_lit(literal)}\n")
    for node in and_nodes:
        handle.write(
            f"{lit(remap[node.index])} {map_lit(node.fanin0)} "
            f"{map_lit(node.fanin1)}\n"
        )
    for position, index in enumerate(aig.pis):
        name = aig.node(index).name
        if name:
            handle.write(f"i{position} {name}\n")
    for position, (name, _) in enumerate(aig.pos):
        handle.write(f"o{position} {name}\n")


def aag_text(aig: Aig) -> str:
    """The .aag serialization as a string."""
    import io

    buffer = io.StringIO()
    write_aag(aig, buffer)
    return buffer.getvalue()


def parse_aag(text: str) -> Aig:
    """Parse ASCII AIGER text into an :class:`~repro.aig.aig.Aig`."""
    lines = text.splitlines()
    if not lines:
        raise ParseError("empty AIGER file")
    header = lines[0].split()
    if len(header) != 6 or header[0] != "aag":
        raise ParseError(f"bad AIGER header {lines[0]!r}", line=1)
    try:
        max_var, num_in, num_latch, num_out, num_and = map(int, header[1:])
    except ValueError as exc:
        raise ParseError(f"non-numeric AIGER header {lines[0]!r}", 1) from exc
    if num_latch != 0:
        raise ParseError("latches are not supported (combinational subset)")
    expected = 1 + num_in + num_out + num_and
    if len(lines) < expected:
        raise ParseError(
            f"AIGER body truncated: {len(lines)} lines < {expected}"
        )

    aig = Aig("aag")
    # Literal translation table, filled as definitions appear.
    translate: dict[int, int] = {0: 0, 1: 1}

    def define(file_lit: int, our_lit: int) -> None:
        if file_lit & 1:
            raise ParseError(f"definition of complemented literal {file_lit}")
        translate[file_lit] = our_lit
        translate[file_lit + 1] = our_lit ^ 1

    def resolve(file_lit: int, line_no: int) -> int:
        try:
            return translate[file_lit]
        except KeyError as exc:
            raise ParseError(
                f"literal {file_lit} used before definition", line_no
            ) from exc

    cursor = 1
    input_lits: list[int] = []
    for position in range(num_in):
        file_lit = int(lines[cursor].split()[0])
        define(file_lit, aig.add_pi())
        input_lits.append(file_lit)
        cursor += 1
    output_lits = []
    for position in range(num_out):
        output_lits.append(int(lines[cursor].split()[0]))
        cursor += 1
    # AND definitions may reference later definitions only in malformed
    # files; AIGER requires topological order, which we enforce.
    pending_ands = []
    for position in range(num_and):
        parts = lines[cursor].split()
        if len(parts) != 3:
            raise ParseError(f"bad AND line {lines[cursor]!r}", cursor + 1)
        lhs, rhs0, rhs1 = map(int, parts)
        built = aig.and_(
            resolve(rhs0, cursor + 1), resolve(rhs1, cursor + 1)
        )
        define(lhs, built)
        cursor += 1

    # Symbol table.
    pi_names: dict[int, str] = {}
    po_names: dict[int, str] = {}
    for raw in lines[cursor:]:
        stripped = raw.strip()
        if not stripped or stripped.startswith("c"):
            break
        kind = stripped[0]
        try:
            index_text, name = stripped[1:].split(" ", 1)
            position = int(index_text)
        except ValueError:
            continue
        if kind == "i":
            pi_names[position] = name
        elif kind == "o":
            po_names[position] = name

    for position, index in enumerate(aig.pis):
        if position in pi_names:
            aig.node(index).name = pi_names[position]
    for position, file_lit in enumerate(output_lits):
        aig.add_po(
            resolve(file_lit, 0), po_names.get(position, f"po{position}")
        )
    return aig


def read_aag(path) -> Aig:
    """Read a .aag file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_aag(handle.read())
