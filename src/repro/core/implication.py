"""Implication engines (paper §4).

An implication assigns pin values that are *forced* by the values already
present, so it can never cause a wrong guess — the more we imply, the fewer
(risky) decisions Algorithm 1 has to make.

Two strengths are implemented, both working forward and backward
(independent of node levels, per the paper's generalized Definition 2.2):

* **Simple implication**: when exactly one truth-table row matches the
  node's current pin values, assign all of that row's non-DC pins.
* **Advanced implication** (Definition 4.1): when several rows match but
  they all agree on some pin's value, assign that pin; pins on which the
  rows disagree (or that any row leaves DC) stay open.

Both run to fixpoint through a worklist: whenever a node's output value
changes, the node itself and all its fanouts are re-examined.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Optional

from repro.logic.cubes import Row, packed_rows
from repro.core.assignment import Assignment, Conflict
from repro.network.network import Network


#: Default cap on memoized examination states across all gates of one
#: engine.  3^(k+1) states per K-input gate bounds each gate, but a large
#: network multiplies that by its gate count; the cap bounds the *total*.
#: Overflow clears every gate memo at once (they are pure caches — results
#: are recomputed on demand, trajectories are unaffected) and counts the
#: dropped entries in ``stats["memo_evictions"]``.
DEFAULT_MEMO_CAP = 1 << 20


class ImplicationStrategy(Enum):
    """How much to imply (paper §4)."""

    #: Only single-matching-row implications (classic D-algorithm style).
    SIMPLE = "simple"
    #: Additionally assign pins on which all matching rows agree (Def. 4.1).
    ADVANCED = "advanced"


@dataclass(slots=True)
class ImplicationOutcome:
    """Result of one implication fixpoint run."""

    #: True if a contradiction was found (caller must revert the target).
    conflict: bool = False
    #: Node whose examination detected the conflict (diagnostics).
    conflict_node: Optional[int] = None
    #: Number of pin values assigned by implications in this run.
    assigned: int = 0
    #: Nodes whose output value changed during the run.
    changed_nodes: list[int] = field(default_factory=list)


def _forced_pins(
    rows: list[Row],
    inputs: list[Optional[int]],
    output: Optional[int],
    advanced: bool,
) -> Optional[list[tuple[int, int]]]:
    """Pin assignments forced by the matching rows.

    Returns a list of ``(pin_index, value)`` where pin index ``i`` in
    ``[0, n)`` is fanin ``i`` and pin index ``n`` is the output, or ``None``
    when nothing is forced.  Assumes ``rows`` is non-empty and already
    filtered to those matching the assignment.
    """
    n = len(inputs)
    if len(rows) == 1:
        row = rows[0]
        forced = [
            (i, lit)
            for i, lit in enumerate(row.literals())
            if lit is not None and inputs[i] is None
        ]
        if output is None:
            forced.append((n, row.output))
        return forced or None
    if not advanced:
        return None
    forced = []
    # A pin is forced only if EVERY matching row binds it to the same value;
    # a DC row means both values remain feasible for that pin.
    for i in range(n):
        if inputs[i] is not None:
            continue
        first = rows[0].literal(i)
        if first is None:
            continue
        if all(row.literal(i) == first for row in rows[1:]):
            forced.append((i, first))
    if output is None:
        first_out = rows[0].output
        if all(row.output == first_out for row in rows[1:]):
            forced.append((n, first_out))
    return forced or None


class ImplicationEngine:
    """Runs implication fixpoints over one network + assignment.

    The network is lowered once at construction (same contract as the
    compiled simulator: don't mutate it afterwards): every gate gets its
    fanin tuple and packed truth-table rows resolved ahead of time, and
    every node its *examiners* (itself plus its fanouts), so the fixpoint
    loop never touches ``Network.node`` / ``fanouts`` or hashes a
    ``TruthTable`` for an ``lru_cache`` probe.

    Examination results are memoized per gate: what a gate's rows force is
    a pure function of its (known_mask, known_values, output) pin state —
    at most ``3 ** (k + 1)`` states for a K-input LUT — so each distinct
    state filters the rows once per engine lifetime and every repeat is a
    dict hit.
    """

    def __init__(
        self,
        network: Network,
        strategy: ImplicationStrategy = ImplicationStrategy.ADVANCED,
        memo_cap: int = DEFAULT_MEMO_CAP,
    ):
        self.network = network
        self.strategy = strategy
        if memo_cap < 1:
            raise ValueError(f"memo_cap must be >= 1, got {memo_cap}")
        self._memo_cap = memo_cap
        self._memo_entries = 0
        #: uid -> (fanins, packed rows, memo); None for PIs and constants.
        #: memo: (known_mask, known_values, output) -> forced pins as
        #: ((pin_index, value), ...) with pin index n = the output, or None
        #: on contradiction.
        self._gate_info: dict[
            int,
            Optional[
                tuple[tuple[int, ...], tuple[tuple[int, int, int], ...], dict]
            ],
        ] = {}
        #: uid -> (uid, *fanouts): nodes to re-examine when uid changes.
        self._examiners: dict[int, tuple[int, ...]] = {}
        #: Work counters for the metrics registry (``simgen.implication.*``).
        #: Updated once per :meth:`propagate` call (never inside the inner
        #: fixpoint loop, which is the generator's hottest path).
        self.stats = {
            "propagate_calls": 0,
            "examinations": 0,
            "forced_assignments": 0,
            "conflicts": 0,
            "memo_evictions": 0,
        }
        for node in network.nodes():
            uid = node.uid
            self._gate_info[uid] = (
                None
                if node.is_pi or node.is_const
                else (tuple(node.fanins), packed_rows(node.table), {})
            )
            self._examiners[uid] = (uid, *network.fanouts(uid))

    def examine(
        self, assignment: Assignment, uid: int
    ) -> Optional[list[tuple[int, int]]]:
        """Forced assignments at one gate, as ``(node_uid, value)`` pairs.

        Returns ``None`` on contradiction (no truth-table row matches the
        current pins).  Uses the packed-row fast path: pins are an integer
        (known_mask, known_values) pair, row matching is two AND operations.
        """
        info = self._gate_info[uid]
        if info is None:  # PI or constant: nothing to force
            return []
        fanins, rows, memo = info
        values = assignment._values  # hot path: direct map access
        known_mask = 0
        known_values = 0
        for i, f in enumerate(fanins):
            v = values.get(f)
            if v is not None:
                known_mask |= 1 << i
                if v:
                    known_values |= 1 << i
        output = values.get(uid)
        key = (known_mask, known_values, output)
        n = len(fanins)
        try:
            forced = memo[key]
        except KeyError:
            forced = memo[key] = self._examine_state(
                rows, n, known_mask, known_values, output
            )
            self._memo_entries += 1
            if self._memo_entries > self._memo_cap:
                self._evict_memos()
        if forced is None:
            return None
        return [
            (uid if i == n else fanins[i], value) for i, value in forced
        ]

    def _examine_state(
        self,
        rows: tuple[tuple[int, int, int], ...],
        n: int,
        known_mask: int,
        known_values: int,
        output: Optional[int],
    ) -> Optional[tuple[tuple[int, int], ...]]:
        """Uncached examination of one pin state; see :meth:`examine`."""
        if output is None and not known_mask:
            return ()  # nothing known at this node yet
        matching = [
            row
            for row in rows
            if (output is None or row[2] == output)
            and not (row[1] ^ known_values) & (row[0] & known_mask)
        ]
        if not matching:
            return None
        result: list[tuple[int, int]] = []
        if len(matching) == 1:
            mask, vals, out = matching[0]
            forced_mask = mask & ~known_mask
            i = 0
            while forced_mask:
                if forced_mask & 1:
                    result.append((i, (vals >> i) & 1))
                forced_mask >>= 1
                i += 1
            if output is None:
                result.append((n, out))  # pin n = the gate's output
            return tuple(result)
        if self.strategy is not ImplicationStrategy.ADVANCED:
            return ()
        # Advanced (Def. 4.1): pins bound to the same value in EVERY
        # matching row are forced; a DC anywhere leaves the pin open.
        base_mask, base_vals, base_out = matching[0]
        forced_mask = base_mask & ~known_mask
        out_agree = output is None
        for mask, vals, out in matching[1:]:
            forced_mask &= mask & ~(vals ^ base_vals)
            if out != base_out:
                out_agree = False
            if not forced_mask and not out_agree:
                return ()
        i = 0
        fm = forced_mask
        while fm:
            if fm & 1:
                result.append((i, (base_vals >> i) & 1))
            fm >>= 1
            i += 1
        if out_agree:
            result.append((n, base_out))
        return tuple(result)

    def _evict_memos(self) -> None:
        """Drop every gate memo once the total-entry cap is exceeded.

        Memos are pure caches of :meth:`_examine_state`, so clearing them
        never changes a trajectory — only the recomputation cost.
        """
        self.stats["memo_evictions"] += self._memo_entries
        for info in self._gate_info.values():
            if info is not None:
                info[2].clear()
        self._memo_entries = 0

    def propagate(
        self, assignment: Assignment, seeds: Iterable[int]
    ) -> ImplicationOutcome:
        """Run implications to fixpoint starting from the seed nodes.

        Seeds should be the nodes whose values were just changed (plus, on
        the first call for a target, the target itself).  Every node whose
        pins may have changed is re-examined until no new value is forced.
        """
        outcome = ImplicationOutcome()
        queue: deque[int] = deque()
        queued: set[int] = set()
        examiners = self._examiners
        gate_info = self._gate_info
        values = assignment._values
        changed = outcome.changed_nodes
        examined = 0  # folded into self.stats once, on any exit path

        # Each examined node's :meth:`examine` body is inlined below
        # (shared state lookup + memo probe) — the fixpoint loop is the
        # generator's hottest path and the per-call overhead of a million
        # method invocations is measurable.  Semantics are identical.
        for seed in seeds:
            # The node itself (its own row constraints) and everyone
            # reading it.
            for cand in examiners[seed]:
                if cand not in queued:
                    queued.add(cand)
                    queue.append(cand)

        try:
            while queue:
                uid = queue.popleft()
                queued.discard(uid)
                examined += 1
                info = gate_info[uid]
                if info is None:  # PI or constant: nothing to force
                    continue
                fanins, rows, memo = info
                known_mask = 0
                known_values = 0
                for i, f in enumerate(fanins):
                    v = values.get(f)
                    if v is not None:
                        known_mask |= 1 << i
                        if v:
                            known_values |= 1 << i
                output = values.get(uid)
                key = (known_mask, known_values, output)
                n = len(fanins)
                forced = memo.get(key, False)
                if forced is False:
                    forced = memo[key] = self._examine_state(
                        rows, n, known_mask, known_values, output
                    )
                    self._memo_entries += 1
                    if self._memo_entries > self._memo_cap:
                        self._evict_memos()
                if forced is None:
                    outcome.conflict = True
                    outcome.conflict_node = uid
                    return outcome
                for i, value in forced:
                    target = uid if i == n else fanins[i]
                    try:
                        fresh = assignment.assign(target, value)
                    except Conflict:
                        # Cannot happen for pins of `uid` (rows matched the
                        # assignment), but a forced value may clash at a node
                        # shared with another pending implication path.
                        outcome.conflict = True
                        outcome.conflict_node = target
                        return outcome
                    if fresh:
                        outcome.assigned += 1
                        changed.append(target)
                        for cand in examiners[target]:
                            if cand not in queued:
                                queued.add(cand)
                                queue.append(cand)
            return outcome
        finally:
            stats = self.stats
            stats["propagate_calls"] += 1
            stats["examinations"] += examined
            stats["forced_assignments"] += outcome.assigned
            if outcome.conflict:
                stats["conflicts"] += 1
