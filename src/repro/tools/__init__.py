"""Command-line netlist utilities (``python -m repro.tools <command>``)."""

from repro.tools.cli import main

__all__ = ["main"]
