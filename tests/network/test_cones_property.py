"""Property tests: MFFC correctness on random networks."""

import pytest

from repro.network import ffc_check, mffc, mffc_leaves
from tests.conftest import random_network


@pytest.mark.parametrize("seed", range(8))
class TestMffcProperties:
    def test_mffc_is_ffc(self, seed):
        net = random_network(seed=seed, num_inputs=5, num_gates=16)
        for node in net.gates():
            cone = mffc(net, node.uid)
            assert ffc_check(net, node.uid, cone), node.uid

    def test_mffc_is_maximal(self, seed):
        """No border fanin can be added while staying fanout-free."""
        net = random_network(seed=seed, num_inputs=5, num_gates=16)
        for node in net.gates():
            cone = mffc(net, node.uid)
            border = {
                f
                for uid in cone
                for f in net.node(uid).fanins
                if f not in cone and not net.node(f).is_pi
            }
            for candidate in border:
                assert not ffc_check(net, node.uid, cone | {candidate}), (
                    node.uid,
                    candidate,
                )

    def test_root_always_inside(self, seed):
        net = random_network(seed=seed, num_inputs=5, num_gates=16)
        for node in net.gates():
            assert node.uid in mffc(net, node.uid)

    def test_leaves_have_no_internal_fanins(self, seed):
        net = random_network(seed=seed, num_inputs=5, num_gates=16)
        for node in net.gates():
            cone = mffc(net, node.uid)
            for leaf in mffc_leaves(net, cone):
                assert not any(
                    f in cone for f in net.node(leaf).fanins
                )

    def test_depth_nonnegative_and_bounded(self, seed):
        from repro.network import mffc_depth

        net = random_network(seed=seed, num_inputs=5, num_gates=16)
        for node in net.gates():
            depth = mffc_depth(net, node.uid)
            assert 0.0 <= depth <= net.level(node.uid)
