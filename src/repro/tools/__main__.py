"""Entry point: ``python -m repro.tools <command> ...``."""

import sys

from repro.tools.cli import main

sys.exit(main())
