"""Input vectors and batched pattern sets.

An :class:`InputVector` is one assignment to the primary inputs, possibly
partial — pattern generators leave PIs outside the target's cone unassigned
and the batch randomizes them at simulation time (paper §3.1).  A
:class:`PatternBatch` packs many vectors into per-PI words for bit-parallel
simulation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

from repro.errors import SimulationError
from repro.network.network import Network
from repro.simulation.bitvec import random_word


@dataclass(slots=True)
class InputVector:
    """A (possibly partial) assignment of values to primary inputs.

    Attributes:
        values: Map PI id -> 0/1.  PIs absent from the map are free.
    """

    values: dict[int, int] = field(default_factory=dict)

    def set(self, pi: int, value: int) -> None:
        if value not in (0, 1):
            raise SimulationError(f"PI value must be 0/1, got {value!r}")
        self.values[pi] = value

    def get(self, pi: int) -> Optional[int]:
        return self.values.get(pi)

    def is_complete_for(self, pis: Iterable[int]) -> bool:
        """True if every listed PI has a value."""
        return all(pi in self.values for pi in pis)

    def completed(self, pis: Iterable[int], rng: random.Random) -> "InputVector":
        """A copy with every listed PI assigned (free PIs randomized)."""
        values = dict(self.values)
        for pi in pis:
            if pi not in values:
                values[pi] = rng.getrandbits(1)
        return InputVector(values)

    def __len__(self) -> int:
        return len(self.values)


class PatternBatch:
    """A set of input vectors packed into per-PI words.

    Pattern ``p`` of the batch is vector ``p`` in insertion order.  Free PI
    bits are filled from the batch's RNG so that every stored vector is
    total.
    """

    def __init__(self, pis: Iterable[int], rng: Optional[random.Random] = None):
        self.pis = tuple(pis)
        self._rng = rng or random.Random(0)
        self._words: dict[int, int] = {pi: 0 for pi in self.pis}
        self.width = 0

    def add_vector(self, vector: InputVector | Mapping[int, int]) -> int:
        """Append one vector; returns its pattern index."""
        values = vector.values if isinstance(vector, InputVector) else vector
        position = self.width
        for pi in self.pis:
            value = values.get(pi)
            if value is None:
                value = self._rng.getrandbits(1)
            elif value not in (0, 1):
                raise SimulationError(f"PI value must be 0/1, got {value!r}")
            if value:
                self._words[pi] |= 1 << position
        self.width += 1
        return position

    def add_random(self, count: int = 1) -> None:
        """Append ``count`` fully random vectors."""
        if count < 0:
            raise SimulationError("count must be >= 0")
        for pi in self.pis:
            self._words[pi] |= random_word(self._rng, count) << self.width
        self.width += count

    def words(self) -> dict[int, int]:
        """Per-PI packed words (PI id -> word of ``width`` bits)."""
        return dict(self._words)

    def vector_at(self, position: int) -> InputVector:
        """Recover the total vector stored at pattern index ``position``."""
        if not 0 <= position < self.width:
            raise SimulationError(f"pattern index {position} out of range")
        return InputVector(
            {pi: (self._words[pi] >> position) & 1 for pi in self.pis}
        )

    @classmethod
    def random_for(
        cls, network: Network, count: int, rng: Optional[random.Random] = None
    ) -> "PatternBatch":
        """A batch of ``count`` random vectors over a network's PIs."""
        batch = cls(network.pis, rng)
        batch.add_random(count)
        return batch
