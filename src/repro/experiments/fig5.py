"""Figure 5: per-benchmark normalized differences, SimGen vs RevS (§6.3).

For every benchmark the paper plots four bars — the normalized difference
of cost, simulation runtime, SAT calls, and SAT runtime of SimGen relative
to reverse simulation (negative = SimGen better).  The harness renders the
same series as signed ASCII bars and reports the Pareto classification the
paper's discussion walks through.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.strategies import SIMGEN
from repro.experiments.config import ExperimentConfig
from repro.experiments.metrics import normalized_difference
from repro.experiments.report import format_series_chart
from repro.experiments.runner import BenchmarkRun, ExperimentRunner

METRICS = ("cost", "sim_runtime", "sat_calls", "sat_runtime")


@dataclass(slots=True)
class Fig5Point:
    """Normalized differences (SimGen vs RevS) for one benchmark."""

    benchmark: str
    copies: int
    cost: float
    sim_runtime: float
    sat_calls: float
    sat_runtime: float
    revs: BenchmarkRun = None  # type: ignore[assignment]
    sgen: BenchmarkRun = None  # type: ignore[assignment]

    def pareto_class(self) -> str:
        """"dominates" / "trade-off" / "dominated" (paper §6.3 wording)."""
        gains = [self.cost, self.sat_calls, self.sat_runtime, self.sim_runtime]
        if all(g <= 0 for g in gains):
            return "dominates"
        if self.cost <= 0 or self.sat_calls <= 0 or self.sat_runtime <= 0:
            return "trade-off"
        return "dominated"


@dataclass(slots=True)
class Fig5Result:
    """All per-benchmark points of Figure 5 (or Figure 6 when scaled)."""

    points: list[Fig5Point] = field(default_factory=list)
    title: str = "Figure 5"

    def render(self) -> str:
        labels = []
        series = {m: [] for m in METRICS}
        for point in self.points:
            label = point.benchmark
            if point.copies > 1:
                label = f"{label} ({point.copies})"
            labels.append(label)
            series["cost"].append(point.cost)
            series["sim_runtime"].append(point.sim_runtime)
            series["sat_calls"].append(point.sat_calls)
            series["sat_runtime"].append(point.sat_runtime)
        text = format_series_chart(
            f"{self.title}: normalized difference of SimGen vs RevS "
            "(negative = SimGen better)",
            labels,
            series,
            scale=1.0,
        )
        counts = {"dominates": 0, "trade-off": 0, "dominated": 0}
        for point in self.points:
            counts[point.pareto_class()] += 1
        # Aggregate (sum-based) differences: per-benchmark ratios explode
        # when the RevS baseline is near zero (e.g. sub-ms SAT phases).
        aggregates = {}
        for metric, revs_attr, sgen_attr in (
            ("cost", "cost_final", "cost_final"),
            ("sim runtime", "sim_time", "sim_time"),
            ("SAT calls", "sat_calls", "sat_calls"),
            ("SAT runtime", "sat_time", "sat_time"),
        ):
            base = sum(getattr(p.revs, revs_attr) for p in self.points)
            ours = sum(getattr(p.sgen, sgen_attr) for p in self.points)
            aggregates[metric] = normalized_difference(ours, base)
        text += "\nAggregate differences: " + ", ".join(
            f"{metric} {value:+.1%}" for metric, value in aggregates.items()
        )
        text += (
            f"\nPareto: dominates {counts['dominates']}, "
            f"trade-off {counts['trade-off']}, "
            f"dominated {counts['dominated']}"
        )
        return text


def run_fig5(
    config: Optional[ExperimentConfig] = None,
    runner: Optional[ExperimentRunner] = None,
    workload: Optional[Sequence[tuple[str, int]]] = None,
    title: str = "Figure 5",
    verbose: bool = False,
) -> Fig5Result:
    """Execute the Figure-5 comparison (pass a scaled workload for Fig 6)."""
    config = config or ExperimentConfig()
    runner = runner or ExperimentRunner(config)
    if workload is None:
        workload = [(name, 1) for name in config.benchmarks]
    result = Fig5Result(title=title)
    for benchmark, copies in workload:
        revs = runner.run(benchmark, "RevS", with_sat=True, copies=copies)
        sgen = runner.run(benchmark, SIMGEN, with_sat=True, copies=copies)
        point = Fig5Point(
            benchmark=benchmark,
            copies=copies,
            cost=normalized_difference(sgen.cost_final, revs.cost_final),
            sim_runtime=normalized_difference(sgen.sim_time, revs.sim_time),
            sat_calls=normalized_difference(sgen.sat_calls, revs.sat_calls),
            sat_runtime=normalized_difference(sgen.sat_time, revs.sat_time),
            revs=revs,
            sgen=sgen,
        )
        result.points.append(point)
        if verbose:
            print(
                f"  {benchmark:10s} cost {point.cost:+.1%} "
                f"satcalls {point.sat_calls:+.1%} [{point.pareto_class()}]"
            )
    return result
