"""Truth tables over a small number of variables.

A :class:`TruthTable` stores the function of one node as a bitmask over its
``2**num_vars`` minterms: bit ``m`` of :attr:`bits` is the output of the
function for the input assignment whose variable ``i`` equals bit ``i`` of
``m`` (variable 0 is the least-significant input).

Tables are the ground truth for everything in SimGen: simulation evaluates
them, cube extraction (``repro.logic.cubes``) turns them into the rows that
implication and decision reason about, and the Tseitin encoder turns them
into CNF.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Iterator, Sequence

from repro.errors import LogicError

#: The largest supported variable count.  2**16 minterm masks are still
#: cheap Python ints; practical LUTs in this project use K <= 6.
MAX_VARS = 16


def _check_num_vars(num_vars: int) -> None:
    if not 0 <= num_vars <= MAX_VARS:
        raise LogicError(f"num_vars must be in [0, {MAX_VARS}], got {num_vars}")


#: full_mask(n) for every legal arity, precomputed (hot in cofactor/ISOP).
_FULL_MASKS = tuple((1 << (1 << n)) - 1 for n in range(MAX_VARS + 1))


@lru_cache(maxsize=None)
def _var_mask(num_vars: int, index: int) -> int:
    """Minterm mask of the projection function of input ``index``.

    Bit ``m`` is set iff bit ``index`` of the minterm ``m`` is set — the
    constant that turns cofactoring into two shifts (see :meth:`cofactor`).
    """
    bits = 0
    for m in range(1 << num_vars):
        if (m >> index) & 1:
            bits |= 1 << m
    return bits


@dataclass(frozen=True, slots=True)
class TruthTable:
    """An immutable Boolean function of ``num_vars`` inputs.

    Attributes:
        num_vars: The number of input variables.
        bits: Minterm bitmask; bit ``m`` is the output for input pattern ``m``.
    """

    num_vars: int
    bits: int

    def __post_init__(self) -> None:
        _check_num_vars(self.num_vars)
        full = self.full_mask(self.num_vars)
        if not 0 <= self.bits <= full:
            raise LogicError(
                f"bits 0x{self.bits:x} out of range for {self.num_vars} vars"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def full_mask(num_vars: int) -> int:
        """The bitmask with every minterm of ``num_vars`` variables set."""
        _check_num_vars(num_vars)
        return _FULL_MASKS[num_vars]

    @classmethod
    def const(cls, num_vars: int, value: bool) -> "TruthTable":
        """A constant-``value`` function of ``num_vars`` inputs."""
        return cls(num_vars, cls.full_mask(num_vars) if value else 0)

    @classmethod
    def var(cls, num_vars: int, index: int) -> "TruthTable":
        """The projection function returning input ``index`` unchanged."""
        _check_num_vars(num_vars)
        if not 0 <= index < num_vars:
            raise LogicError(f"variable index {index} out of range ({num_vars} vars)")
        return cls(num_vars, _var_mask(num_vars, index))

    @classmethod
    def from_minterms(cls, num_vars: int, minterms: Iterable[int]) -> "TruthTable":
        """Build a table from the set of input patterns mapped to 1."""
        _check_num_vars(num_vars)
        bits = 0
        size = 1 << num_vars
        for m in minterms:
            if not 0 <= m < size:
                raise LogicError(f"minterm {m} out of range for {num_vars} vars")
            bits |= 1 << m
        return cls(num_vars, bits)

    @classmethod
    def from_outputs(cls, outputs: Sequence[int | bool]) -> "TruthTable":
        """Build a table from the full output column (length must be 2**k)."""
        size = len(outputs)
        num_vars = size.bit_length() - 1
        if size == 0 or (1 << num_vars) != size:
            raise LogicError(f"output column length {size} is not a power of two")
        bits = 0
        for m, value in enumerate(outputs):
            if value not in (0, 1, False, True):
                raise LogicError(f"output value {value!r} is not Boolean")
            if value:
                bits |= 1 << m
        return cls(num_vars, bits)

    @classmethod
    def from_hex(cls, num_vars: int, text: str) -> "TruthTable":
        """Parse an ABC-style hexadecimal truth-table string."""
        try:
            bits = int(text, 16)
        except ValueError as exc:
            raise LogicError(f"invalid hex truth table {text!r}") from exc
        return cls(num_vars, bits)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of minterms (2**num_vars)."""
        return 1 << self.num_vars

    def evaluate(self, assignment: Sequence[int | bool]) -> int:
        """Evaluate on a full input assignment; returns 0 or 1."""
        if len(assignment) != self.num_vars:
            raise LogicError(
                f"assignment has {len(assignment)} values, table has "
                f"{self.num_vars} vars"
            )
        minterm = 0
        for i, value in enumerate(assignment):
            if value:
                minterm |= 1 << i
        return (self.bits >> minterm) & 1

    def output_for(self, minterm: int) -> int:
        """The output bit for the input pattern ``minterm``."""
        if not 0 <= minterm < self.size:
            raise LogicError(f"minterm {minterm} out of range")
        return (self.bits >> minterm) & 1

    def minterms(self) -> Iterator[int]:
        """Iterate over input patterns mapped to 1."""
        bits = self.bits
        m = 0
        while bits:
            if bits & 1:
                yield m
            bits >>= 1
            m += 1

    def count_ones(self) -> int:
        """Number of onset minterms."""
        return self.bits.bit_count()

    def is_const(self) -> bool:
        """True if the function is constant 0 or constant 1."""
        return self.bits == 0 or self.bits == self.full_mask(self.num_vars)

    def const_value(self) -> int | None:
        """0/1 if the function is constant, else ``None``."""
        if self.bits == 0:
            return 0
        if self.bits == self.full_mask(self.num_vars):
            return 1
        return None

    def depends_on(self, index: int) -> bool:
        """True if the function actually depends on input ``index``."""
        if not 0 <= index < self.num_vars:
            raise LogicError(f"variable index {index} out of range")
        # Compare the two cofactors without materializing them: for every
        # minterm m with bit ``index`` clear, bits[m] vs bits[m + 2**index].
        blk = 1 << index
        lower = _FULL_MASKS[self.num_vars] & ~_var_mask(self.num_vars, index)
        return bool((self.bits ^ (self.bits >> blk)) & lower)

    def support(self) -> list[int]:
        """Indices of the inputs the function truly depends on."""
        return [i for i in range(self.num_vars) if self.depends_on(i)]

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def _binary(self, other: "TruthTable", op: str) -> "TruthTable":
        if self.num_vars != other.num_vars:
            raise LogicError(
                f"arity mismatch: {self.num_vars} vs {other.num_vars} vars"
            )
        if op == "and":
            bits = self.bits & other.bits
        elif op == "or":
            bits = self.bits | other.bits
        elif op == "xor":
            bits = self.bits ^ other.bits
        else:  # pragma: no cover - internal misuse
            raise LogicError(f"unknown op {op}")
        return TruthTable(self.num_vars, bits)

    def __and__(self, other: "TruthTable") -> "TruthTable":
        return self._binary(other, "and")

    def __or__(self, other: "TruthTable") -> "TruthTable":
        return self._binary(other, "or")

    def __xor__(self, other: "TruthTable") -> "TruthTable":
        return self._binary(other, "xor")

    def __invert__(self) -> "TruthTable":
        return TruthTable(self.num_vars, self.bits ^ self.full_mask(self.num_vars))

    def cofactor(self, index: int, value: int) -> "TruthTable":
        """Shannon cofactor with input ``index`` fixed to ``value``.

        The result keeps the same arity; the cofactored variable becomes a
        don't-care input (the table no longer depends on it).
        """
        if not 0 <= index < self.num_vars:
            raise LogicError(f"variable index {index} out of range")
        if value not in (0, 1):
            raise LogicError(f"cofactor value must be 0/1, got {value!r}")
        return _cofactor_cached(self, index, value)

    def compose(self, fanin_tables: Sequence["TruthTable"]) -> "TruthTable":
        """Substitute ``fanin_tables[i]`` for input ``i``.

        All fanin tables must share one arity ``n``; the result is a function
        of those ``n`` base variables.  Used by LUT mapping to compute cut
        functions.
        """
        if len(fanin_tables) != self.num_vars:
            raise LogicError(
                f"compose needs {self.num_vars} fanin tables, got "
                f"{len(fanin_tables)}"
            )
        if self.num_vars == 0:
            return self
        base = fanin_tables[0].num_vars
        for table in fanin_tables:
            if table.num_vars != base:
                raise LogicError("compose fanin tables must share arity")
        result_bits = 0
        for m in range(1 << base):
            local = 0
            for i, table in enumerate(fanin_tables):
                if (table.bits >> m) & 1:
                    local |= 1 << i
            if (self.bits >> local) & 1:
                result_bits |= 1 << m
        return TruthTable(base, result_bits)

    def permute(self, order: Sequence[int]) -> "TruthTable":
        """Reorder inputs: new input ``i`` is old input ``order[i]``."""
        if sorted(order) != list(range(self.num_vars)):
            raise LogicError(f"order {order!r} is not a permutation")
        bits = 0
        for m in range(self.size):
            src = 0
            for new_i, old_i in enumerate(order):
                if (m >> new_i) & 1:
                    src |= 1 << old_i
            if (self.bits >> src) & 1:
                bits |= 1 << m
        return TruthTable(self.num_vars, bits)

    def expand(self, num_vars: int, positions: Sequence[int]) -> "TruthTable":
        """Embed into a wider arity: old input ``i`` becomes ``positions[i]``."""
        _check_num_vars(num_vars)
        if len(positions) != self.num_vars:
            raise LogicError("positions length must match arity")
        if len(set(positions)) != len(positions):
            raise LogicError("positions must be distinct")
        for p in positions:
            if not 0 <= p < num_vars:
                raise LogicError(f"position {p} out of range for {num_vars} vars")
        bits = 0
        for m in range(1 << num_vars):
            local = 0
            for i, p in enumerate(positions):
                if (m >> p) & 1:
                    local |= 1 << i
            if (self.bits >> local) & 1:
                bits |= 1 << m
        return TruthTable(num_vars, bits)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def to_hex(self) -> str:
        """ABC-style zero-padded hexadecimal string."""
        digits = max(1, (self.size + 3) // 4)
        return f"{self.bits:0{digits}x}"

    def __str__(self) -> str:
        return f"TT<{self.num_vars}>:{self.to_hex()}"


@lru_cache(maxsize=1 << 17)
def _cofactor_cached(table: TruthTable, index: int, value: int) -> TruthTable:
    """Shannon cofactor as two mask/shift operations, memoized.

    Replicate the upper (``value=1``) or lower (``value=0``) half of every
    ``2**index``-wide block over its sibling half.  Cofactoring is the inner
    loop of ISOP extraction and the implication engine, and LUT networks
    reuse few distinct functions, so the cache hit rate is very high.
    """
    blk = 1 << index
    upper = _var_mask(table.num_vars, index)
    if value:
        kept = table.bits & upper
        bits = kept | (kept >> blk)
    else:
        kept = table.bits & (_FULL_MASKS[table.num_vars] & ~upper)
        bits = kept | (kept << blk)
    return TruthTable(table.num_vars, bits)
