"""The 42-benchmark suite: integrity, determinism, sweep instances."""

import pytest

from repro.benchgen import (
    BENCHMARKS,
    FIG7_BENCHMARKS,
    benchmark_names,
    build_benchmark,
    sweep_instance,
)
from repro.errors import ReproError
from repro.network import validate
from tests.conftest import networks_equal

#: The names of Table 1/2's benchmarks, straight from the paper.
PAPER_NAMES = {
    "alu4", "apex1", "apex2", "apex3", "apex4", "apex5", "cordic", "cps",
    "dalu", "des", "e64", "ex1010", "ex5p", "i10", "k2", "misex3",
    "misex3c", "pdc", "seq", "spla", "table3", "table5", "sin", "square",
    "arbiter", "dec", "m_ctrl", "priority", "voter", "log2",
    "b14_C", "b14_C2", "b15_C", "b15_C2", "b17_C", "b17_C2",
    "b20_C", "b20_C2", "b21_C", "b21_C2", "b22_C", "b22_C2",
}


class TestRegistry:
    def test_exactly_42_benchmarks(self):
        assert len(BENCHMARKS) == 42

    def test_names_match_paper(self):
        assert set(benchmark_names()) == PAPER_NAMES

    def test_fig7_benchmarks_in_suite(self):
        for name in FIG7_BENCHMARKS:
            assert name in BENCHMARKS

    def test_three_suites_represented(self):
        suites = {spec.suite for spec in BENCHMARKS.values()}
        assert suites == {"vtr", "epfl", "itc99"}

    def test_unknown_name_rejected(self):
        with pytest.raises(ReproError):
            build_benchmark("nonexistent")


class TestBuild:
    @pytest.mark.parametrize("name", sorted(PAPER_NAMES))
    def test_builds_and_validates(self, name):
        net = build_benchmark(name)
        validate(net)
        assert net.num_gates > 0
        assert len(net.pis) > 0
        assert len(net.pos) > 0

    def test_deterministic(self):
        for name in ("apex2", "b14_C", "voter"):
            a = build_benchmark(name)
            b = build_benchmark(name)
            assert a.num_gates == b.num_gates
            assert networks_equal(a, b)

    def test_c_and_c2_variants_differ(self):
        a = build_benchmark("b14_C")
        b = build_benchmark("b14_C2")
        # same interface sizes, different logic (seeds differ)
        assert len(a.pis) == len(b.pis)
        assert not networks_equal(a, b)


class TestSweepInstance:
    @pytest.mark.parametrize("name", ["alu4", "apex2", "dec", "b14_C"])
    def test_mapped_instance_valid_and_k_bounded(self, name):
        inst = sweep_instance(name, k=6)
        validate(inst)
        for node in inst.gates():
            assert node.num_fanins <= 6

    def test_instance_function_matches_benchmark(self):
        name = "priority"
        base = build_benchmark(name)
        inst = sweep_instance(name)
        assert len(inst.pis) == len(base.pis)
        assert networks_equal(base, inst)

    def test_cec_copy_doubles_outputs(self):
        plain = sweep_instance("alu4")
        cec = sweep_instance("alu4", with_cec_copy=True)
        assert len(cec.pos) == 2 * len(plain.pos)

    def test_putontop_scaling(self):
        single = sweep_instance("alu4", copies=1)
        stacked = sweep_instance("alu4", copies=3)
        assert stacked.num_gates > 2 * single.num_gates
        validate(stacked)


class TestFunctionalSpotChecks:
    """Each generator family computes what its name promises."""

    def test_alu_add_operation(self):
        from repro.simulation import Simulator

        net = build_benchmark("alu4")
        width = (len(net.pis) - 3) // 2
        sim = Simulator(net)
        po = dict(net.pos)
        a_pis = net.pis[:width]
        b_pis = net.pis[width : 2 * width]
        op_pis = net.pis[2 * width :]
        for x, y in [(3, 5), (7, 1), (0, 0), (2**width - 1, 1)]:
            values = {a_pis[i]: (x >> i) & 1 for i in range(width)}
            values.update({b_pis[i]: (y >> i) & 1 for i in range(width)})
            values.update({op: 0 for op in op_pis})  # opcode 0 = add
            out = sim.run_vector(values)
            got = sum(out[po[f"r{i}"]] << i for i in range(width))
            got |= out[po["cout"]] << width
            assert got == x + y, (x, y)

    def test_decoder_one_hot(self):
        from repro.simulation import Simulator

        net = build_benchmark("dec")
        sim = Simulator(net)
        po = dict(net.pos)
        bits = len(net.pis)
        for code in (0, 1, (1 << bits) - 1, 5):
            values = {net.pis[i]: (code >> i) & 1 for i in range(bits)}
            out = sim.run_vector(values)
            for j in range(1 << bits):
                assert out[po[f"d{j}"]] == (1 if j == code else 0)

    def test_priority_encoder_grants(self):
        from repro.simulation import Simulator

        net = build_benchmark("priority")
        sim = Simulator(net)
        po = dict(net.pos)
        width = sum(1 for n in po if n.startswith("g"))
        for req_pattern in (0b1, 0b100, 0b110000, 0):
            values = {
                net.pis[i]: (req_pattern >> i) & 1 for i in range(width)
            }
            out = sim.run_vector(values)
            expected_grant = None
            for i in range(width):
                if (req_pattern >> i) & 1:
                    expected_grant = i
                    break
            for i in range(width):
                assert out[po[f"g{i}"]] == (1 if i == expected_grant else 0)
            assert out[po["valid"]] == (1 if req_pattern else 0)

    def test_voter_majority(self):
        from repro.simulation import Simulator

        net = build_benchmark("voter")
        sim = Simulator(net)
        po = dict(net.pos)
        width = len(net.pis)
        for ones in (0, width // 2, width // 2 + 1, width):
            pattern = (1 << ones) - 1
            values = {net.pis[i]: (pattern >> i) & 1 for i in range(width)}
            out = sim.run_vector(values)
            assert out[po["majority"]] == (1 if ones > width // 2 else 0)

    def test_square_values(self):
        from repro.simulation import Simulator

        net = build_benchmark("square")
        sim = Simulator(net)
        po = dict(net.pos)
        width = len(net.pis)
        for x in (0, 1, 5, (1 << width) - 1):
            values = {net.pis[i]: (x >> i) & 1 for i in range(width)}
            out = sim.run_vector(values)
            got = sum(out[po[f"p{j}"]] << j for j in range(2 * width))
            assert got == x * x, x

    def test_parity_encoder_overall_bit(self):
        from repro.simulation import Simulator

        net = build_benchmark("e64")
        sim = Simulator(net)
        po = dict(net.pos)
        width = len(net.pis)
        for pattern in (0, 1, 0b1011, (1 << width) - 1):
            values = {net.pis[i]: (pattern >> i) & 1 for i in range(width)}
            out = sim.run_vector(values)
            assert out[po["overall"]] == bin(pattern).count("1") % 2
