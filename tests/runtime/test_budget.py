"""Budget/Deadline semantics (fake clock) and their solver integration."""

import pytest

from repro.errors import BudgetExpired
from repro.runtime import Budget, Deadline
from repro.sat.solver import CdclSolver, SatResult
from repro.sweep.checker import PairChecker
from tests.runtime.conftest import parity_pair_network


class FakeClock:
    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestDeadline:
    def test_unlimited(self):
        deadline = Deadline(None)
        assert not deadline.expired()
        assert deadline.remaining() is None

    def test_expiry_on_fake_clock(self):
        clock = FakeClock()
        deadline = Deadline(5.0, clock=clock)
        assert not deadline.expired()
        assert deadline.remaining() == pytest.approx(5.0)
        clock.advance(4.9)
        assert not deadline.expired()
        clock.advance(0.2)
        assert deadline.expired()
        assert deadline.remaining() == 0.0

    def test_negative_seconds_rejected(self):
        with pytest.raises(ValueError):
            Deadline(-1.0)


class TestBudgetCaps:
    def test_conflict_cap(self):
        budget = Budget(conflicts=100)
        assert not budget.expired()
        budget.charge_conflicts(99)
        assert not budget.expired()
        assert budget.remaining_conflicts() == 1
        budget.charge_conflicts(1)
        assert budget.expired()
        assert budget.exhausted_reason() == "conflicts"

    def test_sat_call_cap(self):
        budget = Budget(sat_calls=2)
        budget.charge_sat_call()
        assert not budget.expired()
        budget.charge_sat_call()
        assert budget.exhausted_reason() == "sat_calls"

    def test_deadline_reason_and_check(self):
        clock = FakeClock()
        budget = Budget(seconds=1.0, clock=clock)
        budget.check()  # headroom: no raise
        clock.advance(2.0)
        assert budget.time_expired()
        assert budget.exhausted_reason() == "deadline"
        with pytest.raises(BudgetExpired, match="deadline"):
            budget.check()

    def test_unlimited_budget_never_expires(self):
        budget = Budget()
        budget.charge_conflicts(10**9)
        budget.charge_sat_call(10**6)
        assert not budget.expired()
        assert budget.remaining_conflicts() is None
        assert budget.remaining_seconds() is None


class TestComposition:
    def test_charges_flow_up(self):
        parent = Budget(conflicts=1000)
        child = parent.subbudget(conflicts=100)
        child.charge_conflicts(60)
        assert parent.conflicts_used == 60
        assert child.remaining_conflicts() == 40

    def test_parent_expiry_flows_down(self):
        clock = FakeClock()
        parent = Budget(seconds=1.0, clock=clock)
        child = parent.subbudget(seconds=100.0, clock=clock)
        assert not child.expired()
        clock.advance(2.0)
        assert child.time_expired()
        assert child.expired()
        assert child.exhausted_reason() == "deadline"

    def test_remaining_is_tightest_across_chain(self):
        clock = FakeClock()
        parent = Budget(seconds=10.0, conflicts=50, clock=clock)
        child = parent.subbudget(seconds=2.0, conflicts=500, clock=clock)
        assert child.remaining_seconds() == pytest.approx(2.0)
        assert child.remaining_conflicts() == 50
        parent.charge_conflicts(30)
        assert child.remaining_conflicts() == 20

    def test_sibling_charges_share_parent(self):
        parent = Budget(sat_calls=3)
        left = parent.subbudget()
        right = parent.subbudget()
        left.charge_sat_call()
        right.charge_sat_call()
        right.charge_sat_call()
        assert parent.expired()
        assert left.expired()


class TestSolverIntegration:
    def test_expired_budget_short_circuits_solve(self):
        solver = CdclSolver()
        solver.add_clause([1, 2])
        solver.add_clause([-1, 2])
        budget = Budget(seconds=0.0)
        assert solver.solve(budget=budget) is SatResult.UNKNOWN

    def test_conflict_budget_tightens_limit(self):
        # Proving an 8-input parity pair needs far more than 5 conflicts.
        net = parity_pair_network(n=8)
        (_, uid_a), (_, uid_b) = net.pos
        budget = Budget(conflicts=5)
        checker = PairChecker(net, conflict_limit=None, budget=budget)
        outcome, _ = checker.check(uid_a, uid_b)
        assert outcome is SatResult.UNKNOWN
        assert budget.expired()
        assert budget.exhausted_reason() == "conflicts"

    def test_sat_call_budget_stops_checker(self):
        net = parity_pair_network(n=4)
        (_, uid_a), (_, uid_b) = net.pos
        budget = Budget(sat_calls=2)
        checker = PairChecker(net, budget=budget)
        first, _ = checker.check(uid_a, uid_b)
        second, _ = checker.check(uid_b, uid_a)
        assert first is SatResult.UNSAT
        assert second is SatResult.UNSAT
        # The cap is consumed: further queries degrade to UNKNOWN.
        third, _ = checker.check(uid_a, uid_b)
        assert third is SatResult.UNKNOWN
        assert checker.stats.unknown == 1

    def test_unbudgeted_solve_unaffected(self):
        net = parity_pair_network(n=4)
        (_, uid_a), (_, uid_b) = net.pos
        outcome, _ = PairChecker(net).check(uid_a, uid_b)
        assert outcome is SatResult.UNSAT
