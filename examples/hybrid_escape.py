#!/usr/bin/env python3
"""Random simulation plateaus; SimGen escapes (the paper's Figure 7 story).

Traces Equation-5 cost per simulation iteration for three runs on the same
benchmark: pure random vectors, random handing over to reverse simulation,
and random handing over to SimGen.  The hand-over happens after the cost is
unchanged for three consecutive iterations, exactly as in §6.5.

Run:  python examples/hybrid_escape.py [benchmark]
"""

import sys

from repro.benchgen import benchmark_names, sweep_instance
from repro.core import HybridGenerator, RandomGenerator, make_generator
from repro.sweep import SweepConfig, SweepEngine

ITERATIONS = 25


def trace(network, generator, label):
    engine = SweepEngine(
        network,
        generator,
        SweepConfig(seed=3, iterations=ITERATIONS, random_width=8),
    )
    _, metrics = engine.run_simulation_phase()
    return label, metrics.cost_history, metrics.sim_time


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "cps"
    if benchmark not in benchmark_names():
        raise SystemExit(f"unknown benchmark {benchmark!r}")
    network = sweep_instance(benchmark)
    print(
        f"benchmark {benchmark}: {network.num_gates} LUTs, "
        f"{len(network.pis)} PIs — {ITERATIONS} simulation iterations\n"
    )

    runs = []
    runs.append(
        trace(network, RandomGenerator(network, seed=1), "RandS")
    )
    for name, label in (("RevS", "RandS->RevS"), ("AI+DC+MFFC", "RandS->SimGen")):
        guided = make_generator(name, network, seed=1)
        hybrid = HybridGenerator(network, guided, seed=2, patience=3)
        runs.append(trace(network, hybrid, label))

    width = max(len(label) for label, _, _ in runs)
    for label, costs, sim_time in runs:
        series = " ".join(f"{c:4d}" for c in costs)
        print(f"{label.ljust(width)} | {series}  ({sim_time:.2f}s)")

    print(
        "\nReading: RandS drops fast, then flat-lines; the hybrids match it"
        " early (same random stage), then keep splitting classes after the"
        " switch — SimGen typically deeper than RevS, at extra runtime."
    )


if __name__ == "__main__":
    main()
