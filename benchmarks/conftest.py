"""Shared configuration for the benchmark harness.

Every bench regenerates one of the paper's tables or figures.  By default a
small benchmark subset keeps ``pytest benchmarks/ --benchmark-only`` under a
few minutes; set ``REPRO_FULL=1`` to run the full 42-benchmark matrix (the
numbers recorded in EXPERIMENTS.md), or use
``python -m repro.experiments all`` directly.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import ExperimentConfig, QUICK_BENCHMARKS

FULL = os.environ.get("REPRO_FULL", "") not in ("", "0")

#: Tiny default so the whole harness stays interactive.
BENCH_BENCHMARKS = (
    None if FULL else ("alu4", "apex2", "cps", "priority", "b14_C")
)


def bench_config() -> ExperimentConfig:
    """The configuration benches run with."""
    if BENCH_BENCHMARKS is None:
        return ExperimentConfig()
    return ExperimentConfig(benchmarks=BENCH_BENCHMARKS)


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    return bench_config()


@pytest.fixture(scope="session")
def shared_runner(config):
    from repro.experiments.runner import ExperimentRunner

    return ExperimentRunner(config)
