"""AIG construction, simplification rules, strashing, evaluation."""

import pytest

from repro.aig import FALSE, TRUE, Aig, lit_not
from repro.errors import NetworkError


class TestSimplification:
    def test_and_with_false(self):
        aig = Aig()
        a = aig.add_pi()
        assert aig.and_(a, FALSE) == FALSE

    def test_and_with_true(self):
        aig = Aig()
        a = aig.add_pi()
        assert aig.and_(a, TRUE) == a

    def test_and_idempotent(self):
        aig = Aig()
        a = aig.add_pi()
        assert aig.and_(a, a) == a
        assert aig.num_ands == 0

    def test_and_with_complement_is_false(self):
        aig = Aig()
        a = aig.add_pi()
        assert aig.and_(a, lit_not(a)) == FALSE

    def test_strash_shares_structure(self):
        aig = Aig()
        a = aig.add_pi()
        b = aig.add_pi()
        g1 = aig.and_(a, b)
        g2 = aig.and_(b, a)  # commuted: same node
        assert g1 == g2
        assert aig.num_ands == 1

    def test_distinct_phases_distinct_nodes(self):
        aig = Aig()
        a = aig.add_pi()
        b = aig.add_pi()
        g1 = aig.and_(a, b)
        g2 = aig.and_(a, lit_not(b))
        assert g1 != g2
        assert aig.num_ands == 2


class TestDerivedOperators:
    def _brute(self, build, fn, arity):
        aig = Aig()
        pis = [aig.add_pi() for _ in range(arity)]
        out = build(aig, pis)
        aig.add_po(out, "f")
        for m in range(1 << arity):
            values = {
                aig.pis[i]: (m >> i) & 1 for i in range(arity)
            }
            got = aig.evaluate(values)["f"]
            bits = [(m >> i) & 1 for i in range(arity)]
            assert got == fn(bits), (m, bits)

    def test_or(self):
        self._brute(lambda g, p: g.or_(p[0], p[1]), lambda b: b[0] | b[1], 2)

    def test_xor(self):
        self._brute(lambda g, p: g.xor_(p[0], p[1]), lambda b: b[0] ^ b[1], 2)

    def test_mux(self):
        self._brute(
            lambda g, p: g.mux_(p[0], p[1], p[2]),
            lambda b: b[1] if b[2] else b[0],
            3,
        )

    def test_and_many(self):
        self._brute(
            lambda g, p: g.and_many(p), lambda b: int(all(b)), 4
        )

    def test_or_many(self):
        self._brute(lambda g, p: g.or_many(p), lambda b: int(any(b)), 4)

    def test_empty_trees(self):
        aig = Aig()
        assert aig.and_many([]) == TRUE
        assert aig.or_many([]) == FALSE


class TestStructure:
    def test_levels_and_depth(self):
        aig = Aig()
        a, b, c = (aig.add_pi() for _ in range(3))
        g1 = aig.and_(a, b)
        g2 = aig.and_(g1, c)
        aig.add_po(g2)
        assert aig.depth() == 2

    def test_bad_literal_rejected(self):
        aig = Aig()
        with pytest.raises(NetworkError):
            aig.and_(2, 100)

    def test_cleanup_drops_unreachable(self):
        aig = Aig()
        a, b = aig.add_pi(), aig.add_pi()
        used = aig.and_(a, b)
        aig.and_(a, lit_not(b))  # dangling
        aig.add_po(used, "f")
        removed = aig.cleanup()
        assert removed == 1
        assert aig.num_ands == 1
        # evaluation still correct after reindexing
        values = {aig.pis[0]: 1, aig.pis[1]: 1}
        assert aig.evaluate(values)["f"] == 1

    def test_simulate_bit_parallel(self):
        aig = Aig()
        a, b = aig.add_pi(), aig.add_pi()
        g = aig.and_(a, lit_not(b))
        aig.add_po(g, "f")
        words = {aig.pis[0]: 0b1100, aig.pis[1]: 0b1010}
        values = aig.simulate(words, 4)
        from repro.aig import lit_node

        assert values[lit_node(g)] == 0b0100
