"""Cones, FFC checks, MFFC extraction and depth (Equations 2)."""

import pytest

from repro.network import (
    MffcCache,
    NetworkBuilder,
    fanin_cone,
    fanout_cone,
    ffc_check,
    mffc,
    mffc_depth,
    mffc_leaves,
)


class TestBasicCones:
    def test_fanin_cone(self, and_or_network):
        net, ids = and_or_network
        cone = fanin_cone(net, ids["out"])
        assert cone == {ids["a"], ids["b"], ids["c"], ids["inner"], ids["out"]}

    def test_fanin_cone_excluding_root(self, and_or_network):
        net, ids = and_or_network
        cone = fanin_cone(net, ids["out"], include_root=False)
        assert ids["out"] not in cone

    def test_fanout_cone(self, and_or_network):
        net, ids = and_or_network
        cone = fanout_cone(net, ids["a"])
        assert cone == {ids["a"], ids["inner"], ids["out"]}


class TestMffc:
    def test_pi_mffc_is_singleton(self, and_or_network):
        net, ids = and_or_network
        assert mffc(net, ids["a"]) == {ids["a"]}

    def test_single_fanout_chain_fully_contained(self, and_or_network):
        net, ids = and_or_network
        cone = mffc(net, ids["out"])
        # inner feeds only out, so it belongs to out's MFFC.
        assert cone == {ids["inner"], ids["out"]}

    def test_shared_node_excluded(self, fig4_network):
        net, ids = fig4_network
        cone = mffc(net, ids["z"])
        assert ids["y"] not in cone  # y also feeds t
        assert ids["x"] in cone
        assert ids["m"] in cone and ids["n"] in cone

    def test_mffc_is_a_fanout_free_cone(self, fig4_network):
        net, ids = fig4_network
        for name in ("z", "t", "x", "n"):
            cone = mffc(net, ids[name])
            assert ffc_check(net, ids[name], cone), name

    def test_mffc_maximality(self, fig4_network):
        """No fanin of the MFFC could be added while staying fanout-free."""
        net, ids = fig4_network
        root = ids["z"]
        cone = mffc(net, root)
        border = {
            f
            for uid in cone
            for f in net.node(uid).fanins
            if f not in cone and not net.node(f).is_pi
        }
        for candidate in border:
            assert not ffc_check(net, root, cone | {candidate}), candidate


class TestMffcDepth:
    def test_paper_figure_4c_depths(self):
        """Reconstruct Fig. 4c: left MFFC depth 0, right MFFC depth 1."""
        builder = NetworkBuilder()
        pis = builder.pis(6)
        # Right cone: m (level 1), n (level 2), y (level 3) with leaves at
        # levels 1, 2, 3 under an output at level 3... we mirror the paper's
        # numbers instead: leaves m, n, y at levels 1, 2, 3, output level 3.
        m = builder.and_(pis[0], pis[1])          # level 1
        n = builder.and_(m, pis[2])               # level 2
        y = builder.and_(n, pis[3])               # level 3
        x = builder.and_(builder.and_(builder.and_(pis[4], pis[5]), pis[4]), pis[5])
        z = builder.and_(x, y)
        builder.po(z, "E")
        net = builder.build()
        # x's MFFC contains its whole chain; y's contains m, n, y.
        y_cone = mffc(net, y)
        assert y_cone == {m, n, y}
        leaves = mffc_leaves(net, y_cone)
        assert leaves == [m]
        assert mffc_depth(net, y) == net.level(y) - net.level(m)

    def test_singleton_depth_zero(self, fig4_network):
        net, ids = fig4_network
        assert mffc_depth(net, ids["y"]) == 0.0

    def test_depth_averages_leaves(self):
        builder = NetworkBuilder()
        a, b, c, d = builder.pis(4)
        left = builder.and_(a, b)      # level 1
        chain = builder.not_(c)        # level 1
        chain2 = builder.not_(chain)   # level 2
        top = builder.and_(left, chain2)  # level 3
        builder.po(top)
        net = builder.build()
        cone = mffc(net, top)
        assert cone == {left, chain, chain2, top}
        leaves = mffc_leaves(net, cone)
        assert set(leaves) == {left, chain}
        # depths: (3-1) and (3-1) -> mean 2.0
        assert mffc_depth(net, top) == 2.0

    def test_cache_consistency(self, fig4_network):
        net, ids = fig4_network
        cache = MffcCache(net)
        for name in ("x", "y", "z", "t"):
            assert cache.depth(ids[name]) == mffc_depth(net, ids[name])
            # second call hits the cache
            assert cache.depth(ids[name]) == mffc_depth(net, ids[name])
