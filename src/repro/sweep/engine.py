"""The SAT-sweeping engine (the blue box of the paper's Figure 2).

The flow mirrors a sweeping tool like ABC's fraiging:

1. **Random simulation** partitions all candidate nodes into equivalence
   classes by signature.
2. **Guided simulation** (any :class:`~repro.core.generator.BaseVectorGenerator`
   plugin — RandS, RevS, or SimGen) refines the classes for a fixed number
   of iterations; the Equation-5 cost is recorded per iteration.
3. **SAT phase**: for every remaining class, candidate pairs are checked
   with the CDCL solver; UNSAT proves equivalence, SAT yields a
   counterexample vector that is simulated back to split further classes
   (the feedback arrow of Figure 2).

The engine measures exactly what the paper reports: per-iteration cost,
simulation runtime, SAT calls, and SAT runtime.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.generator import BaseVectorGenerator
from repro.errors import SweepError
from repro.network.network import Network
from repro.sat.solver import SatResult
from repro.simulation.compiled import CompiledSimulator
from repro.simulation.patterns import InputVector, PatternBatch
from repro.simulation.simulator import Simulator
from repro.sweep.checker import PairChecker
from repro.sweep.classes import EquivalenceClasses


@dataclass(slots=True)
class SweepConfig:
    """Tunable parameters of a sweep run."""

    #: Master RNG seed; every stage derives from it (deterministic runs).
    seed: int = 0
    #: Rounds of initial random simulation (paper §6.1 uses one round).
    random_rounds: int = 1
    #: Patterns per random round (one machine word's worth by default).
    random_width: int = 64
    #: Guided-generator iterations after random simulation (paper: 20).
    iterations: int = 20
    #: Track PIs as class members (off: LUT outputs only, as in §6.1).
    include_pis: bool = False
    #: Enable complemented-signature matching (fraiging-style extension).
    match_complements: bool = False
    #: CDCL conflict budget per equivalence query (None = unbounded).
    sat_conflict_limit: Optional[int] = 20000
    #: Feed SAT counterexamples back into simulation (Figure 2 feedback).
    resimulate_cex: bool = True
    #: One persistent solver with selector-guarded miters (ABC-style); the
    #: fresh-solver-per-query mode exists for cross-checking.
    incremental_sat: bool = True
    #: ``"compiled"`` simulates through the tape-compiled engine with
    #: batched counterexample resimulation over cone-restricted tapes;
    #: ``"reference"`` keeps the original dict-walking simulator and the
    #: one-full-network-pass-per-disproof resimulation.  Both produce
    #: bit-identical classes, cost histories, and SAT-call counts (the
    #: perf harness cross-checks this); reference exists as the measured
    #: baseline and for debugging.
    engine: str = "compiled"
    #: Max pending counterexamples per resimulation flush.  Pending
    #: vectors are always flushed before the classes are next consulted,
    #: so batching never changes results; wider batches form when several
    #: counterexamples are queued back-to-back (e.g. via
    #: :meth:`SweepEngine.queue_counterexample`).
    cex_batch_width: int = 64
    #: Recompile the resimulation tape onto the surviving splittable
    #: members' cones when their count falls below this fraction of the
    #: previously compiled target set (geometric => amortized-free).
    resim_recompile_factor: float = 0.5


@dataclass(slots=True)
class SweepMetrics:
    """Everything the paper's evaluation reports for one run."""

    #: Equation-5 cost after random simulation and after every iteration.
    cost_history: list[int] = field(default_factory=list)
    #: Wall-clock seconds spent generating + simulating vectors.
    sim_time: float = 0.0
    #: Seconds per guided iteration (aligned with ``cost_history[1:]``).
    iteration_times: list[float] = field(default_factory=list)
    #: Vectors simulated in the simulation phase.
    vectors_simulated: int = 0
    #: SAT queries issued in the SAT phase.
    sat_calls: int = 0
    #: Wall-clock seconds inside the SAT phase.
    sat_time: float = 0.0
    #: Pairs proven equivalent (UNSAT).
    proven: int = 0
    #: Pairs disproven with a counterexample (SAT).
    disproven: int = 0
    #: Pairs abandoned at the conflict limit.
    unknown: int = 0

    @property
    def final_cost(self) -> int:
        """Cost after the simulation phase (what Table 1 reports)."""
        if not self.cost_history:
            raise SweepError("no cost recorded yet")
        return self.cost_history[-1]


@dataclass(slots=True)
class SweepResult:
    """Outcome of a full sweep."""

    classes: EquivalenceClasses
    metrics: SweepMetrics
    #: Proven equivalent pairs as (representative, member, complemented?).
    equivalences: list[tuple[int, int, bool]] = field(default_factory=list)


#: Progress callback: (phase, step, cost) — phase is "random", "guided",
#: or "sat"; step counts iterations/queries; cost is the current Eq. 5 cost.
SweepObserver = Callable[[str, int, int], None]


class SweepEngine:
    """Drives simulation-based class refinement and SAT resolution."""

    def __init__(
        self,
        network: Network,
        generator: Optional[BaseVectorGenerator] = None,
        config: Optional[SweepConfig] = None,
        observer: Optional[SweepObserver] = None,
    ):
        self.network = network
        self.generator = generator
        self.config = config or SweepConfig()
        if self.config.engine not in ("compiled", "reference"):
            raise SweepError(
                f"unknown engine {self.config.engine!r} "
                "(use 'compiled' or 'reference')"
            )
        self._compiled = self.config.engine == "compiled"
        self.simulator = (
            CompiledSimulator(network) if self._compiled else Simulator(network)
        )
        self.observer = observer
        self._rng = random.Random(self.config.seed)
        #: Counterexamples awaiting resimulation: (total, partial, rep, member).
        self._pending_cex: list[
            tuple[InputVector, InputVector, Optional[int], Optional[int]]
        ] = []
        self._resim_sim = self.simulator
        self._resim_targets = 0  # target-set size the resim tape was built for

    def _notify(self, phase: str, step: int, cost: int) -> None:
        if self.observer is not None:
            self.observer(phase, step, cost)

    # ------------------------------------------------------------------
    # Phase 1 + 2: simulation
    # ------------------------------------------------------------------
    def run_simulation_phase(self) -> tuple[EquivalenceClasses, SweepMetrics]:
        """Random rounds, then guided iterations; returns classes + metrics."""
        config = self.config
        metrics = SweepMetrics()
        classes = EquivalenceClasses(
            self.network,
            include_pis=config.include_pis,
            match_complements=config.match_complements,
        )
        start = time.perf_counter()
        for round_index in range(max(1, config.random_rounds)):
            batch = PatternBatch(
                self.network.pis, random.Random(self._rng.random())
            )
            batch.add_random(config.random_width)
            values = self.simulator.run_batch(batch)
            classes.refine(values, batch.width)
            metrics.vectors_simulated += batch.width
            cost = classes.cost()
            metrics.cost_history.append(cost)
            self._notify("random", round_index, cost)
        metrics.sim_time += time.perf_counter() - start

        if self.generator is None:
            return classes, metrics

        for iteration in range(config.iterations):
            iter_start = time.perf_counter()
            vectors = self.generator.generate(classes.splittable())
            if vectors:
                batch = PatternBatch(
                    self.network.pis, random.Random(self._rng.random())
                )
                for vector in vectors:
                    batch.add_vector(vector)
                values = self.simulator.run_batch(batch)
                classes.refine(values, batch.width)
                metrics.vectors_simulated += batch.width
            elapsed = time.perf_counter() - iter_start
            metrics.iteration_times.append(elapsed)
            metrics.sim_time += elapsed
            cost = classes.cost()
            metrics.cost_history.append(cost)
            self._notify("guided", iteration, cost)
        return classes, metrics

    # ------------------------------------------------------------------
    # Phase 3: SAT
    # ------------------------------------------------------------------
    def run_sat_phase(
        self, classes: EquivalenceClasses, metrics: SweepMetrics
    ) -> SweepResult:
        """Resolve every remaining class with the CDCL solver."""
        config = self.config
        result = SweepResult(classes=classes, metrics=metrics)
        checker = PairChecker(
            self.network,
            conflict_limit=config.sat_conflict_limit,
            incremental=config.incremental_sat,
        )
        self._pending_cex.clear()
        self._resim_sim = self.simulator
        self._resim_targets = classes.num_members
        compiled = self._compiled
        start = time.perf_counter()
        while True:
            if compiled:
                # Flush before the classes are consulted so deferral can
                # never change which class (or pair) is attacked next.
                self._flush_cex(classes, metrics)
                cls = classes.best_splittable()
                if cls is None:
                    break
            else:
                pending = classes.splittable()
                if not pending:
                    break
                cls = pending[0]
            # Representative: the shallowest member (cheapest miter cones).
            rep = min(cls, key=lambda uid: (self.network.level(uid), uid))
            others = [uid for uid in cls if uid != rep]
            member = others[0]
            complemented = classes.phase(rep) != classes.phase(member)
            outcome, vector = checker.check(rep, member, complemented)
            metrics.sat_calls += 1
            self._notify("sat", metrics.sat_calls, classes.cost())
            if outcome is SatResult.UNSAT:
                metrics.proven += 1
                result.equivalences.append((rep, member, complemented))
                classes.remove_member(member)
            elif outcome is SatResult.SAT:
                metrics.disproven += 1
                if config.resimulate_cex and vector is not None:
                    if compiled:
                        self.queue_counterexample(vector, rep, member)
                        if len(self._pending_cex) >= config.cex_batch_width:
                            self._flush_cex(classes, metrics)
                    else:
                        self._resimulate(classes, vector, metrics)
                        if classes.same_class(rep, member):
                            # The counterexample must separate the pair; if
                            # phases / free PIs conspired against the split,
                            # force it.
                            classes.isolate(member)
                elif classes.same_class(rep, member):
                    classes.isolate(member)
            else:
                metrics.unknown += 1
                classes.isolate(member)
        self._flush_cex(classes, metrics)
        metrics.sat_time += time.perf_counter() - start
        return result

    # ------------------------------------------------------------------
    # Counterexample resimulation
    # ------------------------------------------------------------------
    def queue_counterexample(
        self,
        vector: InputVector,
        rep: Optional[int] = None,
        member: Optional[int] = None,
    ) -> None:
        """Defer a counterexample into the pending resimulation batch.

        Free PIs are completed immediately with this engine's RNG (the same
        draw order as the reference engine's per-cex batch), so flush timing
        never changes the simulated patterns.  When ``rep``/``member`` are
        given, the flush forces the pair apart if refinement alone failed
        to separate them.
        """
        rng = random.Random(self._rng.random())
        total = vector.completed(self.network.pis, rng)
        self._pending_cex.append((total, vector, rep, member))

    def _flush_cex(
        self, classes: EquivalenceClasses, metrics: SweepMetrics
    ) -> None:
        """Resimulate all pending counterexamples in one batch."""
        if not self._pending_cex:
            return
        pending = self._pending_cex
        self._pending_cex = []
        batch = PatternBatch(self.network.pis)
        for total, _, _, _ in pending:
            batch.add_vector(total)
        values = self._resim_simulator(classes).run_batch(batch)
        classes.refine(values, batch.width)
        metrics.vectors_simulated += batch.width
        for _, partial, rep, member in pending:
            # Counterexamples make good seeds for neighbourhood generators
            # (Mishchenko et al.'s 1-distance vectors, paper §2.3).
            if self.generator is not None and hasattr(
                self.generator, "set_seed_vector"
            ):
                self.generator.set_seed_vector(partial)
            if (
                rep is not None
                and member is not None
                and classes.tracked(rep)
                and classes.tracked(member)
                and classes.same_class(rep, member)
            ):
                classes.isolate(member)

    def _resim_simulator(self, classes: EquivalenceClasses):
        """The simulator used for counterexample resimulation.

        Only members of classes of size >= 2 can still split, so the tape
        is recompiled onto their (shrinking) fanin cones whenever the
        splittable member count halves.
        """
        members = classes.splittable_members()
        threshold = self._resim_targets * self.config.resim_recompile_factor
        if members and len(members) <= threshold:
            self._resim_sim = CompiledSimulator(self.network, targets=members)
            self._resim_targets = len(members)
        return self._resim_sim

    def _resimulate(
        self,
        classes: EquivalenceClasses,
        vector: InputVector,
        metrics: SweepMetrics,
    ) -> None:
        """Reference-mode resimulation: one full-network pass per cex."""
        batch = PatternBatch(self.network.pis, random.Random(self._rng.random()))
        batch.add_vector(vector)
        values = self.simulator.run_batch(batch)
        classes.refine(values, batch.width)
        metrics.vectors_simulated += batch.width
        # Counterexamples make good seeds for neighbourhood generators
        # (Mishchenko et al.'s 1-distance vectors, paper §2.3).
        if self.generator is not None and hasattr(
            self.generator, "set_seed_vector"
        ):
            self.generator.set_seed_vector(vector)

    # ------------------------------------------------------------------
    def run(self) -> SweepResult:
        """Full sweep: simulation phase followed by the SAT phase."""
        classes, metrics = self.run_simulation_phase()
        return self.run_sat_phase(classes, metrics)
