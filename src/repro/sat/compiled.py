"""Compiled CDCL backend: a flat clause-arena core behind the reference API.

The reference solver (:mod:`repro.sat.solver`) keeps each clause as its
own Python list, watch lists in a dict, and per-variable state in parallel
lists accessed through small methods.  Per propagation that costs a dict
probe, a bound-method call per literal value check, and a tuple allocation
per surviving watcher — the interpreter overhead dominates once the SAT
phase is the hot loop (BENCH_perf.json: ~70% of `RandS` wall time).

This module rebuilds the same search around the memory hierarchy instead
(what MiniSat does in C, and what the sst-sat hardware port makes
explicit):

* **Clause arena** — every clause lives in one flat ``int32`` buffer: a
  header word holding the length, then the literals.  A clause reference
  (*cref*) is the header's arena index.  Learnt clauses are appended to
  the same arena; deletion negates the header (tombstone) and a
  compacting GC slides survivors down — in attachment order, so relative
  cref order (which the reduction ranking ties on) is preserved.
* **Watch vectors with inline blockers** — per-literal vectors of
  ``(cref, blocker)`` pairs.  A true blocker skips the clause without
  touching the arena: one read and one value probe instead of a clause
  load.  The reference solver implements the *same* blocker discipline,
  so both backends visit identical clauses in identical order.
* **Dense state** — assignment is a flat per-*literal* truth array
  (``vals[lit] in (1, 0, -1)``), and trail / level / reason / phase /
  VSIDS activity are flat per-variable arrays; no dicts, no objects.
* **Indexed activity heap** — branching pops an (activity desc, var asc)
  max-heap instead of scanning every variable.  The ordering is the exact
  total order the reference's linear argmax scan resolves to, so both
  backends pick the same decision variable every time.

The core itself is ``_satcore.c``, compiled on first import with the
system C compiler (result cached by source hash, so the build runs once
per machine) and driven through ``ctypes``.  When no compiler is
available — or ``REPRO_SATCORE=python`` forces it — the same arena design
runs as :class:`PyArenaCdclSolver`, a pure-Python twin with identical
trajectories; ``SAT_CORE`` says which core is active in this process.

Both cores are **bit-identical** to the reference: same verdicts, models,
conflict / propagation / decision counts, learnt-clause trajectories, and
budget expiry points.  The differential-fuzz suite under ``tests/sat/``
and the perf harness's work-count identity assertion hold them to it.
"""

from __future__ import annotations

import ctypes
import os
import time
from typing import Iterable, Optional, Sequence

from repro.errors import SatError
from repro.runtime.cbuild import CoreLoader, build_shared_library
from repro.sat.cnf import Cnf
from repro.sat.solver import CdclSolver, SatResult

#: Backend names accepted by the seam (``SweepConfig.sat_backend``,
#: ``PairChecker(sat_backend=...)``, ``--sat-backend``).
SAT_BACKENDS = ("compiled", "reference")


def solver_class(sat_backend: str = "compiled"):
    """The solver class for a backend name (usable as a solver factory)."""
    if sat_backend not in SAT_BACKENDS:
        raise SatError(
            f"unknown sat backend {sat_backend!r} "
            f"(use one of {', '.join(SAT_BACKENDS)})"
        )
    return CompiledCdclSolver if sat_backend == "compiled" else CdclSolver


def make_solver(sat_backend: str = "compiled"):
    """A fresh solver instance for a backend name."""
    return solver_class(sat_backend)()


# ----------------------------------------------------------------------
# C core build + load
# ----------------------------------------------------------------------

#: Budget deadline poll callback: returns nonzero once the deadline passed.
_TIME_CB = ctypes.CFUNCTYPE(ctypes.c_int)

_SOURCE_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)), "_satcore.c")


def _configure(lib: ctypes.CDLL) -> None:
    handle = ctypes.c_void_p
    i32p = ctypes.POINTER(ctypes.c_int32)
    lib.sat_new.argtypes = []
    lib.sat_new.restype = handle
    lib.sat_free.argtypes = [handle]
    lib.sat_free.restype = None
    lib.sat_new_var.argtypes = [handle]
    lib.sat_new_var.restype = ctypes.c_int
    lib.sat_num_vars.argtypes = [handle]
    lib.sat_num_vars.restype = ctypes.c_int
    lib.sat_ok.argtypes = [handle]
    lib.sat_ok.restype = ctypes.c_int
    lib.sat_add_clause.argtypes = [handle, i32p, ctypes.c_int32]
    lib.sat_add_clause.restype = ctypes.c_int
    lib.sat_solve.argtypes = [
        handle,
        i32p,
        ctypes.c_int32,
        ctypes.c_int64,
        _TIME_CB,
        ctypes.POINTER(ctypes.c_int64),
    ]
    lib.sat_solve.restype = ctypes.c_int
    lib.sat_get_model.argtypes = [
        handle,
        ctypes.POINTER(ctypes.c_int8),
        ctypes.c_int32,
    ]
    lib.sat_get_model.restype = ctypes.c_int
    lib.sat_model_valid.argtypes = [handle]
    lib.sat_model_valid.restype = ctypes.c_int
    lib.sat_get_stats.argtypes = [handle, ctypes.POINTER(ctypes.c_int64)]
    lib.sat_get_stats.restype = None


#: Build / load / corrupt-cache-recovery machinery, shared with the
#: SimGen lane core (see :mod:`repro.runtime.cbuild` for the contract).
_LOADER = CoreLoader(
    source_path=_SOURCE_PATH,
    cache_name="satcore",
    env_var="REPRO_SATCORE",
    configure=_configure,
    describe="compiled SAT core",
)


def _build_library() -> Optional[str]:
    """Compile ``_satcore.c`` into a cached shared object; path or None."""
    return build_shared_library(_SOURCE_PATH, "satcore")


def _try_load(lib_path: str) -> Optional[ctypes.CDLL]:
    return _LOADER._try_load(lib_path)


def _load_satcore() -> Optional[ctypes.CDLL]:
    return _LOADER.load()


_LIB = _load_satcore()

#: Which core backs :class:`CompiledCdclSolver` in this process: ``"c"``
#: when ``_satcore.c`` compiled and loaded, ``"python"`` otherwise.
SAT_CORE = "c" if _LIB is not None else "python"


class CArenaCdclSolver:
    """The ``_satcore.c`` clause-arena core behind the reference solver API.

    The hot search loop (propagation, analysis, reduction, GC) runs
    entirely in C; Python keeps only the pieces whose semantics belong to
    the caller — budget admission and deadline polling, conflict-limit
    merging, wall-clock accounting, and model extraction.  Result and
    model semantics mirror :class:`~repro.sat.solver.CdclSolver` exactly,
    including which early returns leave a previous model readable.
    """

    LEARNT_CAP_INIT = CdclSolver.LEARNT_CAP_INIT
    LEARNT_CAP_GROWTH = CdclSolver.LEARNT_CAP_GROWTH
    BUDGET_CHECK_INTERVAL = CdclSolver.BUDGET_CHECK_INTERVAL

    def __init__(self) -> None:
        if _LIB is None:
            raise SatError(
                "compiled SAT core unavailable in this process "
                "(no C compiler, or REPRO_SATCORE=python)"
            )
        self._lib = _LIB
        self._handle = self._lib.sat_new()
        if not self._handle:
            raise SatError("satcore allocation failed")
        self._model: Optional[dict[int, bool]] = None
        self._solve_calls = 0
        self._solve_seconds = 0.0
        self._buf = (ctypes.c_int32 * 64)()

    def __del__(self) -> None:
        handle = getattr(self, "_handle", None)
        lib = getattr(self, "_lib", None)
        if handle and lib is not None:
            lib.sat_free(handle)
            self._handle = None

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        """Allocate a fresh variable; returns its DIMACS index."""
        var = self._lib.sat_new_var(self._handle)
        if var < 0:
            raise MemoryError("satcore variable allocation failed")
        return var

    def _ensure_vars(self, var: int) -> None:
        while self.num_vars < var:
            self.new_var()

    @property
    def num_vars(self) -> int:
        return self._lib.sat_num_vars(self._handle)

    def add_clause(self, literals: Iterable[int]) -> bool:
        """Add a clause (DIMACS literals); returns False if trivially UNSAT.

        Same root-level simplification as the reference solver (performed
        in C): tautologies and root-satisfied clauses are dropped,
        root-falsified literals are stripped, units are enqueued and
        propagated.
        """
        lits = []
        for lit in literals:
            if lit == 0:
                raise SatError("literal 0 is not allowed")
            lits.append(lit)
        n = len(lits)
        buf = self._buf
        if n > len(buf):
            self._buf = buf = (ctypes.c_int32 * max(n, 2 * len(buf)))()
        buf[:n] = lits
        rc = self._lib.sat_add_clause(self._handle, buf, n)
        if rc < 0:
            # -1 covers both "called at decision level > 0" (a caller
            # bug, surfaced like the reference) and allocation failure.
            raise SatError("add_clause only allowed at decision level 0")
        return bool(rc)

    def add_cnf(self, cnf: Cnf) -> bool:
        """Add all clauses of a :class:`~repro.sat.cnf.Cnf`."""
        self._ensure_vars(cnf.num_vars)
        ok = True
        for clause in cnf:
            ok = self.add_clause(clause) and ok
        return ok

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_limit: Optional[int] = None,
        budget=None,
    ) -> SatResult:
        """Run the CDCL search (same contract as the reference solver)."""
        start = time.perf_counter()
        try:
            return self._solve(assumptions, conflict_limit, budget)
        finally:
            self._solve_calls += 1
            self._solve_seconds += time.perf_counter() - start

    def _solve(
        self,
        assumptions: Sequence[int],
        conflict_limit: Optional[int],
        budget,
    ) -> SatResult:
        lib = self._lib
        handle = self._handle
        if not lib.sat_ok(handle):
            return SatResult.UNSAT
        if budget is not None and (
            budget.time_expired() or budget.remaining_conflicts() == 0
        ):
            self._model = None
            return SatResult.UNKNOWN

        assumption_list = []
        for lit in assumptions:
            if lit == 0:
                raise SatError("literal 0 is not allowed")
            assumption_list.append(lit)
        n = len(assumption_list)
        assum = (ctypes.c_int32 * n)(*assumption_list) if n else None

        if budget is not None:
            remaining = budget.remaining_conflicts()
            if remaining is not None and (
                conflict_limit is None or remaining < conflict_limit
            ):
                conflict_limit = remaining
            expired = budget.time_expired
            callback = _TIME_CB(lambda: 1 if expired() else 0)
        else:
            callback = _TIME_CB()  # NULL: no deadline polling in C

        conflicts = ctypes.c_int64(0)
        rc = lib.sat_solve(
            handle,
            assum,
            n,
            -1 if conflict_limit is None else conflict_limit,
            callback,
            ctypes.byref(conflicts),
        )
        if rc < 0:
            raise MemoryError("satcore solve allocation failed")
        if rc == 3:
            # UNSAT before the search loop (root propagation conflict):
            # the reference's early return, which leaves any previous
            # model readable and charges nothing to the budget.
            return SatResult.UNSAT
        if budget is not None:
            budget.charge_conflicts(conflicts.value)
        if rc == 1:
            num_vars = lib.sat_num_vars(handle)
            raw_buf = (ctypes.c_int8 * (num_vars + 1))()
            lib.sat_get_model(handle, raw_buf, num_vars + 1)
            raw = ctypes.string_at(raw_buf, num_vars + 1)
            # Per-var bytes: 1 true, 0 false, 255 (== -1) unassigned.
            self._model = {
                var: raw[var] == 1
                for var in range(1, num_vars + 1)
                if raw[var] != 255
            }
            return SatResult.SAT
        self._model = None
        return SatResult.UNSAT if rc == 0 else SatResult.UNKNOWN

    def model(self) -> dict[int, bool]:
        """The satisfying assignment of the last SAT solve call."""
        if self._model is None:
            raise SatError("no model available (last result was not SAT)")
        return dict(self._model)

    @property
    def stats(self) -> dict:
        """Counter snapshot, same keys as the Python cores plus arena/GC."""
        raw = (ctypes.c_int64 * 10)()
        self._lib.sat_get_stats(self._handle, raw)
        return {
            "decisions": raw[0],
            "conflicts": raw[1],
            "propagations": raw[2],
            "restarts": raw[3],
            "learnts_deleted": raw[4],
            "reductions": raw[5],
            "solve_calls": self._solve_calls,
            "solve_seconds": self._solve_seconds,
            "watchers_compacted": raw[6],
            "arena_bytes": raw[7],
            "arena_gcs": raw[8],
            "arena_words_reclaimed": raw[9],
        }


class PyArenaCdclSolver:
    """Pure-Python arena core: the no-compiler fallback, bit-identical.

    Same flat-arena / inline-blocker / indexed-heap design as the C core,
    expressed with Python lists (tuples for watch entries — measured
    faster than ``array``-backed vectors under CPython's int boxing).
    """

    _UNASSIGNED = -1

    LEARNT_CAP_INIT = CdclSolver.LEARNT_CAP_INIT
    LEARNT_CAP_GROWTH = CdclSolver.LEARNT_CAP_GROWTH
    BUDGET_CHECK_INTERVAL = CdclSolver.BUDGET_CHECK_INTERVAL

    def __init__(self) -> None:
        self._num_vars = 0
        #: The clause arena: ``[len, lit0, .., litk, len, lit0, ..]``.
        self._arena = []
        #: Live learnt clauses: cref -> LBD at learn time.
        self._learnts: dict[int, int] = {}
        self._learnt_cap = self.LEARNT_CAP_INIT
        #: Per-literal watch vectors of ``(cref, blocker)`` tuples, indexed
        #: by internal literal (slots 0/1 unused).
        self._watches: list[list] = [[], []]
        #: Per-literal truth: 1 true, 0 false, -1 unassigned (slots 0/1
        #: unused).  ``vals[l]`` and ``vals[l^1]`` are updated together.
        self._vals: list[int] = [-1, -1]
        # Per-variable state, 1-indexed (index 0 unused).
        self._level: list[int] = [0]
        self._reason: list[int] = [-1]  # cref or -1
        self._activity: list[float] = [0.0]
        self._phase: list[int] = [0]
        #: Branching max-heap of variables, keyed (activity desc, var asc);
        #: ``_heap_pos[v]`` is v's heap index or -1.  Lazy: assigned vars
        #: are filtered at pop time and re-inserted on backtrack.
        self._heap: list[int] = []
        self._heap_pos: list[int] = [-1]
        self._trail: list[int] = []  # internal literals in assignment order
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._ok = True
        self._var_inc = 1.0
        self._var_decay = 0.95
        self.stats = {
            "decisions": 0,
            "conflicts": 0,
            "propagations": 0,
            "restarts": 0,
            "learnts_deleted": 0,
            "reductions": 0,
            "solve_calls": 0,
            "solve_seconds": 0.0,
            "watchers_compacted": 0,
            "arena_bytes": 0,
            "arena_gcs": 0,
            "arena_words_reclaimed": 0,
        }

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        """Allocate a fresh variable; returns its DIMACS index."""
        self._num_vars += 1
        self._vals.extend((-1, -1))
        self._level.append(0)
        self._reason.append(-1)
        self._activity.append(0.0)
        self._phase.append(0)
        self._watches.append([])
        self._watches.append([])
        self._heap_pos.append(-1)
        self._heap_insert(self._num_vars)
        return self._num_vars

    def _ensure_vars(self, var: int) -> None:
        while self._num_vars < var:
            self.new_var()

    @property
    def num_vars(self) -> int:
        return self._num_vars

    def add_clause(self, literals: Iterable[int]) -> bool:
        """Add a clause (DIMACS literals); returns False if trivially UNSAT.

        Same root-level simplification as the reference solver: tautologies
        and root-satisfied clauses are dropped, root-falsified literals are
        stripped, units are enqueued and propagated.
        """
        if self._trail_lim:
            raise SatError("add_clause only allowed at decision level 0")
        seen: set[int] = set()
        clause: list[int] = []
        for lit in literals:
            if lit == 0:
                raise SatError("literal 0 is not allowed")
            var = lit if lit > 0 else -lit
            ilit = (var << 1) | (1 if lit < 0 else 0)
            if var > self._num_vars:
                self._ensure_vars(var)
            if (ilit ^ 1) in seen:
                return True  # tautology
            if ilit in seen:
                continue
            value = self._vals[ilit]
            if value == 1 and self._level[var] == 0:
                return True  # satisfied at root
            if value == 0 and self._level[var] == 0:
                continue  # falsified at root: drop literal
            seen.add(ilit)
            clause.append(ilit)
        if not clause:
            self._ok = False
            return False
        if len(clause) == 1:
            if not self._enqueue(clause[0], -1):
                self._ok = False
                return False
            conflict = self._propagate()
            if conflict >= 0:
                self._ok = False
                return False
            return True
        self._attach_clause(clause)
        return True

    def add_cnf(self, cnf: Cnf) -> bool:
        """Add all clauses of a :class:`~repro.sat.cnf.Cnf`."""
        self._ensure_vars(cnf.num_vars)
        ok = True
        for clause in cnf:
            ok = self.add_clause(clause) and ok
        return ok

    def _attach_clause(self, clause: list[int], lbd: Optional[int] = None) -> int:
        arena = self._arena
        cref = len(arena)
        arena.append(len(clause))
        arena.extend(clause)
        first, second = clause[0], clause[1]
        self._watches[first].append((cref, second))
        self._watches[second].append((cref, first))
        if lbd is not None:
            self._learnts[cref] = lbd
        return cref

    # ------------------------------------------------------------------
    # Learnt-DB reduction and arena GC
    # ------------------------------------------------------------------
    def _reduce_learnts(self) -> None:
        """Delete the worst half of the removable learnt clauses.

        Same ranking as the reference solver: (LBD desc, length desc, cref
        desc) — crefs are monotone in attachment order, so the ordering
        matches the reference's clause-index tiebreak exactly.  Deletion
        tombstones the header (negated length); the watch vectors are then
        compacted eagerly and the arena GC'd, so no tombstone is ever seen
        by propagation.
        """
        arena = self._arena
        learnts = self._learnts
        locked = {self._reason[ilit >> 1] for ilit in self._trail}
        removable = sorted(
            (
                cref
                for cref, lbd in learnts.items()
                if lbd > 2 and cref not in locked
            ),
            key=lambda cref: (-learnts[cref], -arena[cref], -cref),
        )
        deleted = removable[: len(removable) // 2]
        for cref in deleted:
            arena[cref] = -arena[cref]
            del learnts[cref]
        self.stats["learnts_deleted"] += len(deleted)
        self.stats["reductions"] += 1
        self._learnt_cap = int(self._learnt_cap * self.LEARNT_CAP_GROWTH)
        if deleted:
            self._gc_arena()

    def _gc_arena(self) -> None:
        """Compact the arena and every watch vector in one pass.

        Survivors slide down in attachment order (monotone cref remap);
        crefs in watch vectors, trail reasons, and the learnt map are
        rewritten, and watch entries of deleted clauses are dropped —
        this is the eager watcher compaction (deleted clauses never linger
        in the watch lists of rarely-falsified literals).
        """
        arena = self._arena
        old_bytes = len(arena) * 4
        if old_bytes > self.stats["arena_bytes"]:
            self.stats["arena_bytes"] = old_bytes
        new_arena = []
        remap: dict[int, int] = {}
        i = 0
        end = len(arena)
        while i < end:
            size = arena[i]
            if size > 0:
                remap[i] = len(new_arena)
                new_arena.extend(arena[i : i + 1 + size])
                i += 1 + size
            else:
                i += 1 - size  # tombstone: header is the negated length
        dropped = 0
        for lit in range(len(self._watches)):
            watch = self._watches[lit]
            if not watch:
                continue
            kept = []
            for entry in watch:
                new_cref = remap.get(entry[0])
                if new_cref is None:
                    dropped += 1
                elif new_cref == entry[0]:
                    kept.append(entry)
                else:
                    kept.append((new_cref, entry[1]))
            self._watches[lit] = kept
        reason = self._reason
        for ilit in self._trail:
            var = ilit >> 1
            if reason[var] >= 0:
                reason[var] = remap[reason[var]]
        self._learnts = {remap[c]: lbd for c, lbd in self._learnts.items()}
        self.stats["watchers_compacted"] += dropped
        self.stats["arena_gcs"] += 1
        self.stats["arena_words_reclaimed"] += end - len(new_arena)
        self._arena = new_arena

    # ------------------------------------------------------------------
    # Assignment machinery
    # ------------------------------------------------------------------
    def _value(self, ilit: int) -> int:
        """1 if literal true, 0 if false, -1 otherwise (cold paths only)."""
        return self._vals[ilit]

    def _enqueue(self, ilit: int, reason: int) -> bool:
        vals = self._vals
        value = vals[ilit]
        if value == 0:
            return False
        if value == 1:
            return True
        var = ilit >> 1
        vals[ilit] = 1
        vals[ilit ^ 1] = 0
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(ilit)
        return True

    def _propagate(self) -> int:
        """Unit propagation; returns the conflicting cref or -1.

        The hot loop: everything is a flat array access.  A watch entry
        whose blocker is true is kept untouched (no arena access); on any
        other visit the clause is normalised (false literal to slot 1), a
        replacement watch is searched, and the entry is either moved, kept
        with a refreshed blocker, or turned into a unit/conflict — exactly
        the reference solver's discipline, in the same order.
        """
        vals = self._vals
        watches = self._watches
        arena = self._arena
        trail = self._trail
        level = self._level
        reason = self._reason
        current_level = len(self._trail_lim)
        qhead = self._qhead
        props = 0
        conflict = -1
        while qhead < len(trail):
            ilit = trail[qhead]
            qhead += 1
            props += 1
            false_lit = ilit ^ 1
            watch = watches[false_lit]
            if not watch:
                continue
            keep = []
            keep_append = keep.append
            it = iter(watch)
            for entry in it:
                blocker = entry[1]
                if vals[blocker] == 1:
                    keep_append(entry)
                    continue
                cref = entry[0]
                base = cref + 1
                size = arena[cref]
                if arena[base] == false_lit:
                    arena[base] = arena[base + 1]
                    arena[base + 1] = false_lit
                first = arena[base]
                if first != blocker and vals[first] == 1:
                    keep_append((cref, first))
                    continue
                moved = False
                for k in range(base + 2, base + size):
                    lk = arena[k]
                    if vals[lk] != 0:
                        arena[base + 1] = lk
                        arena[k] = false_lit
                        watches[lk].append((cref, first))
                        moved = True
                        break
                if moved:
                    continue
                keep_append((cref, first))
                value = vals[first]
                if value == 0:
                    conflict = cref
                    keep.extend(it)
                    break
                if value == -1:
                    var = first >> 1
                    vals[first] = 1
                    vals[first ^ 1] = 0
                    level[var] = current_level
                    reason[var] = cref
                    trail.append(first)
            watches[false_lit] = keep
            if conflict >= 0:
                break
        self._qhead = qhead
        self.stats["propagations"] += props
        return conflict

    def _cancel_until(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        bound = self._trail_lim[level]
        trail = self._trail
        vals = self._vals
        phase = self._phase
        reason = self._reason
        heap_pos = self._heap_pos
        for idx in range(len(trail) - 1, bound - 1, -1):
            var = trail[idx] >> 1
            pos_lit = var << 1
            phase[var] = vals[pos_lit]
            vals[pos_lit] = -1
            vals[pos_lit | 1] = -1
            reason[var] = -1
            if heap_pos[var] < 0:
                self._heap_insert(var)
        del trail[bound:]
        del self._trail_lim[level:]
        self._qhead = min(self._qhead, len(trail))

    # ------------------------------------------------------------------
    # Activity heap
    # ------------------------------------------------------------------
    # Max-heap under the total order (activity desc, var asc) — the exact
    # order the reference's first-strict-max linear scan resolves to, so
    # the popped variable always equals the scanned argmax.

    def _heap_insert(self, var: int) -> None:
        heap = self._heap
        heap.append(var)
        self._heap_pos[var] = len(heap) - 1
        self._sift_up(len(heap) - 1)

    def _sift_up(self, i: int) -> None:
        heap = self._heap
        pos = self._heap_pos
        activity = self._activity
        var = heap[i]
        act = activity[var]
        while i > 0:
            parent = (i - 1) >> 1
            pvar = heap[parent]
            pact = activity[pvar]
            if pact > act or (pact == act and pvar < var):
                break
            heap[i] = pvar
            pos[pvar] = i
            i = parent
        heap[i] = var
        pos[var] = i

    def _sift_down(self, i: int) -> None:
        heap = self._heap
        pos = self._heap_pos
        activity = self._activity
        size = len(heap)
        var = heap[i]
        act = activity[var]
        while True:
            child = 2 * i + 1
            if child >= size:
                break
            cvar = heap[child]
            cact = activity[cvar]
            right = child + 1
            if right < size:
                rvar = heap[right]
                ract = activity[rvar]
                if ract > cact or (ract == cact and rvar < cvar):
                    child = right
                    cvar = rvar
                    cact = ract
            if act > cact or (act == cact and var < cvar):
                break
            heap[i] = cvar
            pos[cvar] = i
            i = child
        heap[i] = var
        pos[var] = i

    def _heap_pop(self) -> int:
        heap = self._heap
        pos = self._heap_pos
        top = heap[0]
        pos[top] = -1
        last = heap.pop()
        if heap:
            heap[0] = last
            pos[last] = 0
            self._sift_down(0)
        return top

    def _rebuild_heap(self) -> None:
        """Re-heapify in place (after an activity rescale collapses ties)."""
        for i in range(len(self._heap) // 2 - 1, -1, -1):
            self._sift_down(i)
        # _sift_down refreshes positions along each path; fix the rest.
        for i, var in enumerate(self._heap):
            self._heap_pos[var] = i

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------
    def _bump(self, var: int) -> None:
        activity = self._activity
        activity[var] += self._var_inc
        if activity[var] > 1e100:
            for v in range(1, self._num_vars + 1):
                activity[v] *= 1e-100
            self._var_inc *= 1e-100
            # Rescaling can collapse distinct activities into ties, which
            # re-orders the (activity, var) total order; rebuild the heap
            # so pops keep matching the reference's rescan-every-time scan.
            self._rebuild_heap()
        elif self._heap_pos[var] >= 0:
            self._sift_up(self._heap_pos[var])

    def _analyze(self, conflict: int) -> tuple[list[int], int]:
        """First-UIP analysis; returns (learnt clause, backjump level)."""
        arena = self._arena
        level = self._level
        trail = self._trail
        reason = self._reason
        current = len(self._trail_lim)
        learnt: list[int] = [0]  # placeholder for the asserting literal
        seen = bytearray(self._num_vars + 1)
        counter = 0
        p = -1
        index = len(trail) - 1
        cref = conflict
        while True:
            base = cref + 1
            start = base if p == -1 else base + 1
            for qi in range(start, base + arena[cref]):
                q = arena[qi]
                var = q >> 1
                if not seen[var] and level[var] > 0:
                    seen[var] = 1
                    self._bump(var)
                    if level[var] >= current:
                        counter += 1
                    else:
                        learnt.append(q)
            # Find the next literal on the trail to resolve on.
            while not seen[trail[index] >> 1]:
                index -= 1
            p = trail[index]
            index -= 1
            var = p >> 1
            seen[var] = 0
            counter -= 1
            if counter == 0:
                break
            cref = reason[var]
        learnt[0] = p ^ 1
        if len(learnt) == 1:
            return learnt, 0
        # Backjump to the second-highest level in the clause; move that
        # literal to watch position 1.
        max_i = 1
        for i in range(2, len(learnt)):
            if level[learnt[i] >> 1] > level[learnt[max_i] >> 1]:
                max_i = i
        learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
        return learnt, level[learnt[1] >> 1]

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _pick_branch(self) -> int:
        vals = self._vals
        heap = self._heap
        while heap:
            var = self._heap_pop()
            if vals[var << 1] == -1:
                return (var << 1) | (self._phase[var] ^ 1)
        return -1

    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_limit: Optional[int] = None,
        budget=None,
    ) -> SatResult:
        """Run the CDCL search (same contract as the reference solver)."""
        start = time.perf_counter()
        try:
            return self._solve(assumptions, conflict_limit, budget)
        finally:
            self.stats["solve_calls"] += 1
            self.stats["solve_seconds"] += time.perf_counter() - start
            arena_bytes = len(self._arena) * 4
            if arena_bytes > self.stats["arena_bytes"]:
                self.stats["arena_bytes"] = arena_bytes

    def _solve(
        self,
        assumptions: Sequence[int],
        conflict_limit: Optional[int],
        budget,
    ) -> SatResult:
        if not self._ok:
            return SatResult.UNSAT
        if budget is not None and (
            budget.time_expired() or budget.remaining_conflicts() == 0
        ):
            self._model = None
            return SatResult.UNKNOWN
        self._cancel_until(0)
        conflict = self._propagate()
        if conflict >= 0:
            self._ok = False
            return SatResult.UNSAT

        assumption_lits = []
        for lit in assumptions:
            if lit == 0:
                raise SatError("literal 0 is not allowed")
            var = lit if lit > 0 else -lit
            if var > self._num_vars:
                self._ensure_vars(var)
            assumption_lits.append((var << 1) | (1 if lit < 0 else 0))

        if budget is not None:
            remaining = budget.remaining_conflicts()
            if remaining is not None and (
                conflict_limit is None or remaining < conflict_limit
            ):
                conflict_limit = remaining
        stats = self.stats
        next_time_check = (
            stats["propagations"] + self.BUDGET_CHECK_INTERVAL
            if budget is not None
            else None
        )

        vals = self._vals
        level = self._level
        conflicts_seen = 0
        restart_budget = 64
        result = SatResult.UNKNOWN
        while True:
            conflict = self._propagate()
            if (
                next_time_check is not None
                and stats["propagations"] >= next_time_check
            ):
                next_time_check = (
                    stats["propagations"] + self.BUDGET_CHECK_INTERVAL
                )
                if budget.time_expired():
                    result = SatResult.UNKNOWN
                    break
            if conflict >= 0:
                conflicts_seen += 1
                stats["conflicts"] += 1
                if len(self._trail_lim) <= len(assumption_lits):
                    result = SatResult.UNSAT
                    break
                learnt, back = self._analyze(conflict)
                lbd = len({level[q >> 1] for q in learnt})
                self._cancel_until(back)
                if len(learnt) == 1:
                    if not self._enqueue(learnt[0], -1):
                        result = SatResult.UNSAT
                        break
                else:
                    cref = self._attach_clause(learnt, lbd=lbd)
                    self._enqueue(learnt[0], cref)
                self._var_inc /= self._var_decay
                if conflict_limit is not None and conflicts_seen >= conflict_limit:
                    result = SatResult.UNKNOWN
                    break
                if conflicts_seen >= restart_budget:
                    restart_budget = int(restart_budget * 1.5)
                    stats["restarts"] += 1
                    self._cancel_until(0)
                    if len(self._learnts) >= self._learnt_cap:
                        self._reduce_learnts()
                continue

            # No conflict: extend assumptions, then decide.
            depth = len(self._trail_lim)
            if depth < len(assumption_lits):
                ilit = assumption_lits[depth]
                value = vals[ilit]
                if value == 0:
                    result = SatResult.UNSAT
                    break
                self._trail_lim.append(len(self._trail))
                if value != 1:
                    self._enqueue(ilit, -1)
                continue
            decision = self._pick_branch()
            if decision == -1:
                result = SatResult.SAT
                break
            stats["decisions"] += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(decision, -1)

        if budget is not None:
            budget.charge_conflicts(conflicts_seen)
        if result is SatResult.SAT:
            self._model = {
                var: bool(vals[var << 1])
                for var in range(1, self._num_vars + 1)
                if vals[var << 1] != -1
            }
        else:
            self._model = None
        self._cancel_until(0)
        return result

    def model(self) -> dict[int, bool]:
        """The satisfying assignment of the last SAT solve call."""
        if getattr(self, "_model", None) is None:
            raise SatError("no model available (last result was not SAT)")
        return dict(self._model)


#: The "compiled" backend's solver class in this process: the C arena core
#: when it built and loaded, the pure-Python arena twin otherwise.
CompiledCdclSolver = CArenaCdclSolver if _LIB is not None else PyArenaCdclSolver
