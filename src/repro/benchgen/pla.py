"""Random two-level (PLA-style) logic generators.

Many MCNC/VTR benchmarks (apex*, misex*, table*, pdc, spla, ex1010, ...)
are flat two-level control logic.  This module synthesizes circuits with
the same character: a set of product terms over the inputs, OR-ed into the
outputs, with controlled term overlap so that distinct outputs share logic
(which creates near-equivalent nodes — the hard cases for random
simulation).
"""

from __future__ import annotations

import random

from repro.network.build import NetworkBuilder
from repro.network.network import Network


def random_pla(
    name: str,
    num_inputs: int,
    num_outputs: int,
    num_terms: int,
    seed: int = 0,
    literals_per_term: tuple[int, int] = (2, 5),
    terms_per_output: tuple[int, int] = (2, 6),
) -> Network:
    """A random PLA: AND-plane of cubes, OR-plane onto the outputs.

    Args:
        literals_per_term: Inclusive range of bound literals per product term.
        terms_per_output: Inclusive range of terms OR-ed per output.
    """
    rng = random.Random(seed)
    builder = NetworkBuilder(name)
    inputs = builder.pis(num_inputs)
    inverted = [builder.not_(x) for x in inputs]

    terms: list[int] = []
    for _ in range(num_terms):
        k = rng.randint(*literals_per_term)
        k = min(k, num_inputs)
        chosen = rng.sample(range(num_inputs), k)
        literals = [
            inputs[i] if rng.random() < 0.5 else inverted[i] for i in chosen
        ]
        terms.append(builder.reduce_tree("and", literals))

    for j in range(num_outputs):
        count = min(rng.randint(*terms_per_output), num_terms)
        chosen = rng.sample(terms, count)
        output = builder.reduce_tree("or", chosen)
        if rng.random() < 0.3:
            output = builder.not_(output)
        builder.po(output, f"o{j}")
    return builder.build()


def random_multilevel_pla(
    name: str,
    num_inputs: int,
    num_outputs: int,
    num_terms: int,
    seed: int = 0,
    depth: int = 2,
    literals_per_term: tuple[int, int] = (2, 4),
) -> Network:
    """PLA layers stacked ``depth`` deep (seq/cps-like control logic).

    Each layer's outputs become candidate literals of the next layer,
    producing the reconvergent multi-level structure of collapsed FSM
    next-state logic.  Wider ``literals_per_term`` makes layer signals
    rarer to activate, which is what defeats random simulation.
    """
    rng = random.Random(seed)
    builder = NetworkBuilder(name)
    signals = builder.pis(num_inputs)
    for layer in range(depth):
        pool = signals + [builder.not_(s) for s in signals]
        layer_terms = []
        for _ in range(num_terms):
            k = min(rng.randint(*literals_per_term), len(pool))
            literals = rng.sample(pool, k)
            layer_terms.append(builder.reduce_tree("and", literals))
        next_signals = []
        width = num_outputs if layer == depth - 1 else max(6, num_inputs // 2)
        for _ in range(width):
            count = min(rng.randint(2, 4), len(layer_terms))
            next_signals.append(
                builder.reduce_tree("or", rng.sample(layer_terms, count))
            )
        signals = next_signals
    for j, s in enumerate(signals):
        builder.po(s, f"o{j}")
    return builder.build()
