"""JSON serialization of experiment results."""

import json

import pytest

from repro.experiments import (
    ExperimentConfig,
    ExperimentRunner,
    run_fig5,
    run_fig7,
    run_table1,
    run_table2,
)
from repro.experiments.serialize import dump_results, to_dict

TINY = ExperimentConfig(
    benchmarks=("alu4",), iterations=3, vectors_per_iteration=2
)


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(TINY)


class TestToDict:
    def test_table1(self, runner):
        payload = to_dict(run_table1(TINY, runner))
        assert payload["kind"] == "table1"
        assert "AI+DC+MFFC" in payload["avg_cost"]
        assert payload["runs"]

    def test_table2(self, runner):
        payload = to_dict(run_table2(TINY, runner))
        assert payload["kind"] == "table2"
        assert payload["rows"][0]["benchmark"] == "alu4"
        assert "sat_calls" in payload["rows"][0]["revs"]

    def test_fig5(self, runner):
        payload = to_dict(run_fig5(TINY, runner))
        assert payload["kind"] == "figure5"
        assert payload["points"][0]["pareto"] in (
            "dominates",
            "trade-off",
            "dominated",
        )

    def test_fig7(self, runner):
        payload = to_dict(
            run_fig7(TINY, runner, benchmarks=("alu4",), iterations=3)
        )
        assert payload["kind"] == "fig7"
        assert "alu4" in payload["traces"]

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            to_dict(object())


class TestDump:
    def test_dump_roundtrips_through_json(self, runner, tmp_path):
        path = tmp_path / "results.json"
        dump_results([run_table2(TINY, runner)], str(path))
        loaded = json.loads(path.read_text(encoding="utf-8"))
        assert loaded[0]["kind"] == "table2"

    def test_cli_json_flag(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        path = tmp_path / "out.json"
        code = main(
            ["table2", "--benchmarks", "alu4", "--json", str(path)]
        )
        assert code == 0
        loaded = json.loads(path.read_text(encoding="utf-8"))
        assert loaded[0]["kind"] == "table2"
