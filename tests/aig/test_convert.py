"""Network <-> AIG conversions preserve functions."""

import random

import pytest

from repro.aig import aig_to_network, network_to_aig
from repro.network import validate
from repro.simulation import Simulator, PatternBatch
from tests.conftest import networks_equal, random_network


def aig_equals_network(aig, network, width=128, seed=0):
    """Compare an AIG against a network by positional PI simulation."""
    rng = random.Random(seed)
    batch = PatternBatch(network.pis, rng)
    batch.add_random(width)
    words = batch.words()
    net_values = Simulator(network).run_batch(batch)
    aig_words = {
        aig_pi: words[net_pi] for aig_pi, net_pi in zip(aig.pis, network.pis)
    }
    aig_values = aig.simulate(aig_words, width)
    from repro.aig import lit_node, lit_phase

    mask = (1 << width) - 1
    for (name_a, literal), (name_n, uid) in zip(aig.pos, network.pos):
        value = aig_values[lit_node(literal)]
        if lit_phase(literal):
            value ^= mask
        if value != net_values[uid]:
            return False
    return True


class TestNetworkToAig:
    @pytest.mark.parametrize("seed", range(5))
    def test_function_preserved(self, seed):
        net = random_network(seed=seed, num_inputs=5, num_gates=15)
        aig = network_to_aig(net)
        assert aig_equals_network(aig, net)

    def test_constants_fold(self):
        from repro.network import NetworkBuilder

        builder = NetworkBuilder()
        a = builder.pi()
        one = builder.const(True)
        g = builder.and_(a, one)
        builder.po(g, "f")
        net = builder.build()
        aig = network_to_aig(net)
        # a & 1 simplifies to the PI literal: no AND nodes at all.
        assert aig.num_ands == 0

    def test_strash_collapses_duplicates(self):
        from repro.network import NetworkBuilder

        builder = NetworkBuilder()
        a, b = builder.pis(2)
        g1 = builder.and_(a, b)
        g2 = builder.and_(a, b)
        builder.po(builder.or_(g1, g2), "f")
        net = builder.build()
        aig = network_to_aig(net)
        # duplicated ANDs share one node; or(x, x) = x
        assert aig.num_ands == 1


class TestRoundtrip:
    @pytest.mark.parametrize("seed", range(5))
    def test_roundtrip_function_preserved(self, seed):
        net = random_network(seed=seed, num_inputs=5, num_gates=15)
        back = aig_to_network(network_to_aig(net))
        validate(back)
        assert networks_equal(net, back)

    def test_roundtrip_of_mapped_benchmark(self):
        from repro.benchgen import sweep_instance

        net = sweep_instance("alu4")
        back = aig_to_network(network_to_aig(net))
        validate(back)
        assert networks_equal(net, back)

    def test_aig_network_sweepable(self):
        """AIG-sourced networks run through the normal SimGen flow."""
        from repro.core import make_generator
        from repro.sweep import SweepConfig, SweepEngine

        net = random_network(seed=9, num_inputs=5, num_gates=15)
        as_aig_net = aig_to_network(network_to_aig(net))
        generator = make_generator("AI+DC+MFFC", as_aig_net, seed=1)
        engine = SweepEngine(
            as_aig_net, generator, SweepConfig(seed=2, iterations=3)
        )
        result = engine.run()
        assert result.classes.splittable() == []
