"""The UNKNOWN escalation ladder: growing conflict limits after the base pass."""

from repro.sweep import SweepConfig, SweepEngine
from tests.runtime.conftest import assert_equivalences_sound, parity_pair_network

# Proving the 10-input chain-vs-tree parity pair takes ~1024 conflicts, so a
# base limit of 100 must abandon it, rung 1 (400) must abandon it again, and
# rung 2 (1600) must prove it.
HARD_N = 10
BASE_LIMIT = 100


def run_sweep(**overrides):
    net = parity_pair_network(n=HARD_N)
    config = SweepConfig(
        seed=3, sat_conflict_limit=BASE_LIMIT, escalation_factor=4, **overrides
    )
    engine = SweepEngine(net, None, config)
    result = engine.run()
    return net, result


class TestLadder:
    def test_base_pass_alone_abandons_the_pair(self):
        net, result = run_sweep(max_escalations=0)
        metrics = result.metrics
        assert metrics.unknown == 1
        assert metrics.escalations == 0
        assert metrics.unknown_after_escalation == 0
        (_, chain), (_, tree) = net.pos
        proven = {frozenset((a, b)) for a, b, _ in result.equivalences}
        assert frozenset((chain, tree)) not in proven

    def test_ladder_proves_the_abandoned_pair(self):
        net, result = run_sweep(max_escalations=2)
        metrics = result.metrics
        # Rung 1 (400 conflicts) fails, rung 2 (1600) proves: two attempts.
        assert metrics.escalations == 2
        assert metrics.unknown == 0
        assert metrics.unknown_after_escalation == 0
        (_, chain), (_, tree) = net.pos
        proven = {frozenset((a, b)) for a, b, _ in result.equivalences}
        assert frozenset((chain, tree)) in proven
        assert_equivalences_sound(net, result.equivalences)

    def test_exhausted_ladder_counts_residual_unknowns(self):
        # One rung of factor 4 tops out at 400 conflicts — still too few.
        net, result = run_sweep(max_escalations=1)
        metrics = result.metrics
        assert metrics.escalations == 1
        assert metrics.unknown == 1
        assert metrics.unknown_after_escalation == 1
        assert_equivalences_sound(net, result.equivalences)

    def test_attempt_time_is_split_per_rung(self):
        _, result = run_sweep(max_escalations=2)
        per_attempt = result.metrics.sat_time_per_attempt
        # Base pass + two rungs, each with nonzero solver time.
        assert len(per_attempt) == 3
        assert all(t > 0.0 for t in per_attempt)
        assert sum(per_attempt) <= result.metrics.sat_time + 1e-6

    def test_escalations_are_counted_as_sat_calls(self):
        _, base = run_sweep(max_escalations=0)
        _, laddered = run_sweep(max_escalations=2)
        assert (
            laddered.metrics.sat_calls
            == base.metrics.sat_calls + laddered.metrics.escalations
        )

    def test_observer_sees_escalation_phase(self):
        phases = []
        net = parity_pair_network(n=HARD_N)
        config = SweepConfig(
            seed=3,
            sat_conflict_limit=BASE_LIMIT,
            max_escalations=2,
            escalation_factor=4,
        )
        engine = SweepEngine(
            net, None, config, observer=lambda phase, _s, _c: phases.append(phase)
        )
        engine.run()
        assert "escalate" in phases
