"""Cut enumeration invariants and cut functions."""

import pytest

from repro.errors import MappingError
from repro.mapping.cuts import Cut, cut_function, enumerate_cuts
from repro.network import NetworkBuilder, fanin_cone
from repro.simulation import cone_function
from tests.conftest import random_network


def is_valid_cut(net, cut):
    """Every PI-to-root path must cross a leaf."""
    leaves = set(cut.leaves)
    # walk the cone from root down; stop at leaves; must never hit a PI.
    stack = [cut.root]
    seen = set()
    while stack:
        uid = stack.pop()
        if uid in leaves or uid in seen:
            continue
        seen.add(uid)
        node = net.node(uid)
        if node.is_pi:
            return False
        stack.extend(node.fanins)
    return True


class TestEnumerate:
    def test_pi_has_only_trivial_cut(self, and_or_network):
        net, ids = and_or_network
        cuts = enumerate_cuts(net, k=4)
        assert cuts[ids["a"]] == [Cut(ids["a"], (ids["a"],))]

    def test_all_cuts_valid_and_k_feasible(self):
        net = random_network(seed=3, num_inputs=5, num_gates=15)
        k = 4
        cuts = enumerate_cuts(net, k=k)
        for uid, cut_list in cuts.items():
            assert cut_list, uid
            for cut in cut_list:
                assert cut.size <= max(
                    k, 1
                ), f"cut {cut} too wide"
                assert is_valid_cut(net, cut), f"invalid cut {cut}"

    def test_trivial_cut_always_present(self):
        net = random_network(seed=1)
        cuts = enumerate_cuts(net, k=3)
        for uid, cut_list in cuts.items():
            assert any(c.is_trivial() for c in cut_list)

    def test_cut_limit_respected(self):
        net = random_network(seed=2, num_inputs=6, num_gates=20)
        cuts = enumerate_cuts(net, k=6, cut_limit=3)
        for cut_list in cuts.values():
            # limit + the trivial cut
            assert len(cut_list) <= 4

    def test_no_dominated_cuts(self):
        net = random_network(seed=4)
        cuts = enumerate_cuts(net, k=4)
        for cut_list in cuts.values():
            nontrivial = [c for c in cut_list if not c.is_trivial()]
            for i, a in enumerate(nontrivial):
                for j, b in enumerate(nontrivial):
                    if i != j:
                        assert not (
                            set(a.leaves) < set(b.leaves)
                        ), (a, b)

    def test_bad_parameters(self, and_or_network):
        net, _ = and_or_network
        with pytest.raises(MappingError):
            enumerate_cuts(net, k=0)
        with pytest.raises(MappingError):
            enumerate_cuts(net, cut_limit=0)


class TestCutFunction:
    def test_matches_cone_function_on_pi_cut(self, and_or_network):
        net, ids = and_or_network
        cut = Cut(ids["out"], tuple(sorted([ids["a"], ids["b"], ids["c"]])))
        table = cut_function(net, cut)
        reference, support = cone_function(net, ids["out"])
        assert support == list(cut.leaves)
        assert table == reference

    def test_internal_cut(self, and_or_network):
        net, ids = and_or_network
        cut = Cut(ids["out"], tuple(sorted([ids["inner"], ids["c"]])))
        table = cut_function(net, cut)
        # out = inner | c with leaves (inner, c) in sorted order
        leaves = sorted([ids["inner"], ids["c"]])
        for m in range(4):
            bits = {leaves[0]: m & 1, leaves[1]: (m >> 1) & 1}
            assert table.output_for(m) == (
                bits[ids["inner"]] | bits[ids["c"]]
            )

    def test_trivial_cut_is_identity(self, and_or_network):
        net, ids = and_or_network
        table = cut_function(net, Cut(ids["out"], (ids["out"],)))
        assert table.bits == 0b10

    def test_pi_inside_cone_rejected(self, and_or_network):
        net, ids = and_or_network
        # A "cut" that does not cover PI b.
        bad = Cut(ids["out"], (ids["a"], ids["c"]))
        with pytest.raises(MappingError):
            cut_function(net, bad)
