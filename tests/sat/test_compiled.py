"""Differential tests of the arena-backed CDCL core vs the reference solver.

The compiled backend's contract is *bit-identity*, not just agreement:
identical verdicts, identical (verified) models, identical conflict /
propagation / decision trajectories, and identical budget-expiry points.
Everything here asserts that contract across three implementations —
the reference :class:`CdclSolver`, the pure-Python arena twin
:class:`PyArenaCdclSolver`, and (when a C compiler was available at
import) the ctypes :class:`CArenaCdclSolver`.
"""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SatError
from repro.runtime.budget import Budget
from repro.sat.compiled import (
    SAT_BACKENDS,
    SAT_CORE,
    CArenaCdclSolver,
    CompiledCdclSolver,
    PyArenaCdclSolver,
    make_solver,
    solver_class,
)
from repro.sat.solver import CdclSolver, SatResult
from repro.sat.tseitin import pair_miter
from tests.conftest import random_network

#: Counters both backends must agree on, call for call.
TRAJECTORY_KEYS = (
    "decisions",
    "conflicts",
    "propagations",
    "restarts",
    "learnts_deleted",
    "reductions",
)

needs_c_core = pytest.mark.skipif(
    SAT_CORE != "c", reason="no C compiler available at import time"
)


def all_solver_factories():
    """Every available implementation, reference first."""
    factories = [CdclSolver, PyArenaCdclSolver]
    if SAT_CORE == "c":
        factories.append(CArenaCdclSolver)
    return factories


def trajectory(solver) -> tuple:
    stats = solver.stats
    return tuple(stats.get(key, 0) for key in TRAJECTORY_KEYS)


def random_clauses(rng: random.Random, num_vars: int, num_clauses: int):
    clauses = []
    for _ in range(num_clauses):
        width = rng.randint(1, min(3, num_vars))
        variables = rng.sample(range(1, num_vars + 1), width)
        clauses.append([v if rng.random() < 0.5 else -v for v in variables])
    return clauses


class TestBackendSelection:
    def test_solver_class_names(self):
        assert solver_class("reference") is CdclSolver
        assert solver_class("compiled") is CompiledCdclSolver
        assert set(SAT_BACKENDS) == {"compiled", "reference"}

    def test_solver_class_rejects_unknown(self):
        with pytest.raises(SatError):
            solver_class("minisat")

    def test_make_solver(self):
        assert isinstance(make_solver("reference"), CdclSolver)
        assert isinstance(make_solver("compiled"), CompiledCdclSolver)


class TestDifferentialFuzz:
    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_random_cnf_identity(self, data):
        """Interleaved add/solve sessions land on identical trajectories."""
        seed = data.draw(st.integers(0, 2**16))
        rng = random.Random(seed)
        num_vars = rng.randint(2, 14)
        script = []
        for _ in range(rng.randint(1, 3)):
            script.append(("add", random_clauses(rng, num_vars, rng.randint(1, 18))))
            assumptions = [
                v if rng.random() < 0.5 else -v
                for v in rng.sample(range(1, num_vars + 1), rng.randint(0, 2))
            ]
            limit = rng.choice([None, None, 5, 50])
            script.append(("solve", assumptions, limit))
        outcomes = []
        for factory in all_solver_factories():
            solver = factory()
            log = []
            for step in script:
                if step[0] == "add":
                    for clause in step[1]:
                        solver.add_clause(clause)
                else:
                    result = solver.solve(
                        assumptions=step[1], conflict_limit=step[2]
                    )
                    model = (
                        dict(solver.model())
                        if result is SatResult.SAT
                        else None
                    )
                    log.append((result, model, trajectory(solver)))
            outcomes.append((factory.__name__, log))
        reference = outcomes[0][1]
        for name, log in outcomes[1:]:
            assert log == reference, f"{name} diverged from CdclSolver"

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2**16))
    def test_miter_identity(self, seed):
        """Pair-miter instances: same verdict, same verified model."""
        network = random_network(seed=seed % 97, num_inputs=4, num_gates=10)
        rng = random.Random(seed)
        gates = [
            node.uid
            for node in network.nodes()
            if not node.is_pi and not node.is_const
        ]
        if len(gates) < 2:
            return
        node_a, node_b = rng.sample(gates, 2)
        cnf, _ = pair_miter(network, node_a, node_b)
        logs = []
        for factory in all_solver_factories():
            solver = factory()
            solver.add_cnf(cnf)
            result = solver.solve()
            model = None
            if result is SatResult.SAT:
                model = dict(solver.model())
                assert cnf.evaluate(model)
            logs.append((result, model, trajectory(solver)))
        assert all(log == logs[0] for log in logs[1:])

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2**16))
    def test_budget_expiry_identity(self, seed):
        """A fake clock expires both backends at the same propagation."""
        rng = random.Random(seed)
        num_vars = rng.randint(8, 20)
        clauses = random_clauses(rng, num_vars, int(num_vars * 4.2))
        step = rng.choice([1e-6, 1e-5, 1e-4])
        seconds = rng.choice([0.0005, 0.005, 0.05])
        conflicts_cap = rng.choice([None, 20, 200])
        logs = []
        for factory in all_solver_factories():
            ticks = itertools.count()

            def clock(counter=ticks):
                return next(counter) * step

            budget = Budget(
                seconds=seconds, conflicts=conflicts_cap, clock=clock
            )
            solver = factory()
            for clause in clauses:
                solver.add_clause(clause)
            result = solver.solve(budget=budget)
            logs.append(
                (result, budget.conflicts_used, trajectory(solver))
            )
        assert all(log == logs[0] for log in logs[1:])


def php_clauses(pigeons: int, holes: int):
    """PHP(p, h) as plain clause lists (UNSAT iff p > h)."""
    clauses = []

    def var(p: int, h: int) -> int:
        return p * holes + h + 1

    for p in range(pigeons):
        clauses.append([var(p, h) for h in range(holes)])
    for h in range(holes):
        for p1, p2 in itertools.combinations(range(pigeons), 2):
            clauses.append([-var(p1, h), -var(p2, h)])
    return clauses


class SmallCapReference(CdclSolver):
    LEARNT_CAP_INIT = 40


class SmallCapPyArena(PyArenaCdclSolver):
    LEARNT_CAP_INIT = 40


class TestArenaGc:
    def test_gc_identity_small_cap(self):
        """Learnt reduction + arena GC stay on the reference trajectory.

        The learnt cap is dropped to 40 so php(7,6) triggers several
        reduce/GC cycles; the arena twin must delete the same clauses,
        compact the same watchers, and keep the verdict trajectory.
        """
        clauses = php_clauses(7, 6)
        logs = []
        for factory in (SmallCapReference, SmallCapPyArena):
            solver = factory()
            for clause in clauses:
                solver.add_clause(clause)
            result = solver.solve()
            logs.append(
                (
                    result,
                    trajectory(solver),
                    solver.stats["watchers_compacted"],
                )
            )
        assert logs[0][1][5] >= 1, "instance must exercise reduce_db"
        assert logs[1] == logs[0]

    def test_pyarena_gc_reclaims_words(self):
        clauses = php_clauses(7, 6)
        solver = SmallCapPyArena()
        for clause in clauses:
            solver.add_clause(clause)
        solver.solve()
        stats = solver.stats
        assert stats["reductions"] >= 1
        assert stats["arena_gcs"] == stats["reductions"]
        assert stats["arena_words_reclaimed"] > 0
        assert stats["arena_bytes"] > 0
        assert stats["watchers_compacted"] > 0

    def test_watcher_compaction_preserves_result(self):
        """Post-GC solving still finds correct verdicts and models."""
        script = [php_clauses(7, 6), [], []]  # 3 solves, clauses up front
        logs = []
        for factory in (SmallCapReference, SmallCapPyArena):
            solver = factory()
            for clause in script[0]:
                solver.add_clause(clause)
            log = [solver.solve()]
            assert solver.stats["reductions"] >= 1
            # Re-solve under assumptions after GC: watch lists must stay
            # consistent (a dangling cref would crash or mis-propagate).
            for v in (1, 8):
                log.append(solver.solve(assumptions=[v]))
            log.append(trajectory(solver))
            logs.append(log)
        assert logs[1] == logs[0]
        assert logs[0][0] is SatResult.UNSAT

    @needs_c_core
    def test_c_core_gc_on_pigeonhole(self):
        """php(9,8) drives the C core through real reduce/GC cycles."""
        solver = CArenaCdclSolver()
        for clause in php_clauses(9, 8):
            solver.add_clause(clause)
        assert solver.solve() is SatResult.UNSAT
        stats = solver.stats
        assert stats["reductions"] >= 1
        assert stats["arena_gcs"] == stats["reductions"]
        assert stats["arena_words_reclaimed"] > 0
        assert stats["learnts_deleted"] > 0
        assert stats["watchers_compacted"] > 0


class TestCompiledSemantics:
    @pytest.mark.parametrize("factory", all_solver_factories())
    def test_add_clause_rejects_zero(self, factory):
        solver = factory()
        with pytest.raises(SatError):
            solver.add_clause([1, 0, 2])

    @pytest.mark.parametrize("factory", all_solver_factories())
    def test_empty_clause_unsat(self, factory):
        solver = factory()
        solver.add_clause([1])
        solver.add_clause([])
        assert solver.solve() is SatResult.UNSAT

    @pytest.mark.parametrize("factory", all_solver_factories())
    def test_tautology_and_duplicates(self, factory):
        solver = factory()
        solver.add_clause([1, -1])  # tautology: dropped
        solver.add_clause([2, 2, 3])  # duplicate literal: deduplicated
        assert solver.solve() is SatResult.SAT
        model = solver.model()
        assert model[2] or model[3]

    @pytest.mark.parametrize("factory", all_solver_factories())
    def test_model_verifies(self, factory):
        rng = random.Random(123)
        clauses = random_clauses(rng, 12, 30)
        solver = factory()
        for clause in clauses:
            solver.add_clause(clause)
        if solver.solve() is SatResult.SAT:
            model = solver.model()
            for clause in clauses:
                assert any(
                    model.get(abs(lit), lit < 0) == (lit > 0)
                    for lit in clause
                ), f"clause {clause} unsatisfied by model"

    @pytest.mark.parametrize("factory", all_solver_factories())
    def test_incremental_selector_pattern(self, factory):
        """The checker's selector-guarded miter protocol works verbatim."""
        solver = factory()
        solver.add_clause([1, 2])
        selector = 3
        solver.add_clause([-selector, -1])
        solver.add_clause([-selector, -2])
        assert solver.solve(assumptions=[selector]) is SatResult.UNSAT
        solver.add_clause([-selector])  # retire
        assert solver.solve() is SatResult.SAT

    @needs_c_core
    def test_c_stats_exports_arena_counters(self):
        solver = CArenaCdclSolver()
        solver.add_clause([1, 2])
        solver.solve()
        stats = solver.stats
        for key in (
            "arena_bytes",
            "arena_gcs",
            "arena_words_reclaimed",
            "watchers_compacted",
            "solve_calls",
            "solve_seconds",
        ):
            assert key in stats
        assert stats["arena_bytes"] > 0
        assert stats["solve_calls"] == 1
