"""The 42-benchmark suite of the paper's evaluation (§6.1).

The paper evaluates on VTR, EPFL, and ITC'99 circuits.  Those files are not
redistributable here, so each name maps to a deterministic synthetic
generator of the same *character* (see DESIGN.md, substitution 3) at
Python-tractable sizes.  :func:`sweep_instance` prepares the sweeping
workload exactly as §6.1 describes: strash the benchmark, optionally stack
it with ``&putontop`` (§6.4), and LUT-map it with K=6 (``if -K 6``); an
optional CEC mode unions the benchmark with a function-preserving rewritten
copy of itself for the equivalence-checking example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.benchgen import arithmetic, control, pla, random_logic
from repro.errors import ReproError
from repro.mapping.lutmap import map_to_luts
from repro.network.network import Network
from repro.sweep.cec import union_network
from repro.transforms.rewrite import rewrite
from repro.transforms.putontop import put_on_top
from repro.transforms.strash import strash


@dataclass(frozen=True, slots=True)
class BenchmarkSpec:
    """One named benchmark: its builder and provenance."""

    name: str
    suite: str  # "vtr" | "epfl" | "itc99"
    build: Callable[[], Network]
    description: str


def _spec(name, suite, description, fn, *args, **kwargs) -> BenchmarkSpec:
    return BenchmarkSpec(
        name, suite, lambda: fn(name, *args, **kwargs), description
    )


BENCHMARKS: dict[str, BenchmarkSpec] = {
    spec.name: spec
    for spec in [
        # ----- VTR / MCNC two-level & misc logic -----
        _spec("alu4", "vtr", "4-op ALU", arithmetic.alu, width=8, seed=11),
        _spec("apex1", "vtr", "PLA control", pla.random_pla, 30, 18, 100,
              seed=21, literals_per_term=(4, 8)),
        _spec("apex2", "vtr", "PLA control", pla.random_pla, 36, 14, 110,
              seed=22, literals_per_term=(4, 9)),
        _spec("apex3", "vtr", "PLA control", pla.random_pla, 30, 20, 100,
              seed=23, literals_per_term=(4, 8)),
        _spec("apex4", "vtr", "dense PLA", pla.random_pla, 26, 20, 140,
              seed=24, literals_per_term=(4, 8), terms_per_output=(3, 8)),
        _spec("apex5", "vtr", "sparse PLA", pla.random_pla, 28, 16, 80,
              seed=25, literals_per_term=(4, 8)),
        _spec("cordic", "vtr", "CORDIC rotator", arithmetic.cordic,
              width=8, iterations=4, seed=26),
        _spec("cps", "vtr", "multilevel control", pla.random_multilevel_pla,
              32, 16, 70, seed=27, depth=3, literals_per_term=(3, 6)),
        _spec("dalu", "vtr", "dedicated ALU", arithmetic.alu, width=9, seed=28),
        _spec("des", "vtr", "S-box round", control.sbox_round, sboxes=5, seed=29),
        _spec("e64", "vtr", "parity encoder", control.parity_encoder,
              width=32, seed=30),
        _spec("ex1010", "vtr", "large dense PLA", pla.random_pla,
              20, 16, 160, seed=31, literals_per_term=(4, 8),
              terms_per_output=(4, 10)),
        _spec("ex5p", "vtr", "PLA", pla.random_pla, 16, 40, 100, seed=32,
              literals_per_term=(4, 8)),
        _spec("i10", "vtr", "random logic", random_logic.random_dag,
              num_inputs=32, num_gates=380, num_outputs=24, seed=33),
        _spec("k2", "vtr", "PLA", pla.random_pla, 30, 18, 100, seed=34,
              literals_per_term=(4, 8)),
        _spec("misex3", "vtr", "PLA", pla.random_pla, 28, 20, 120, seed=35,
              literals_per_term=(4, 8)),
        _spec("misex3c", "vtr", "PLA (compact)", pla.random_pla,
              28, 20, 80, seed=36, literals_per_term=(4, 8)),
        _spec("pdc", "vtr", "very dense PLA", pla.random_pla,
              24, 24, 170, seed=37, literals_per_term=(4, 8),
              terms_per_output=(4, 9)),
        _spec("seq", "vtr", "sequential next-state", pla.random_multilevel_pla,
              28, 18, 70, seed=38, depth=3, literals_per_term=(3, 6)),
        _spec("spla", "vtr", "dense PLA", pla.random_pla,
              24, 22, 150, seed=39, literals_per_term=(4, 8),
              terms_per_output=(3, 8)),
        _spec("table3", "vtr", "table lookup PLA", pla.random_pla,
              26, 16, 120, seed=40, literals_per_term=(4, 8),
              terms_per_output=(3, 7)),
        _spec("table5", "vtr", "table lookup PLA", pla.random_pla,
              26, 16, 110, seed=41, literals_per_term=(4, 8),
              terms_per_output=(3, 7)),
        # ----- EPFL -----
        _spec("sin", "epfl", "sine approximation", arithmetic.sin_approx,
              width=10, seed=51),
        _spec("square", "epfl", "squarer", arithmetic.square, width=10, seed=52),
        _spec("arbiter", "epfl", "masked priority arbiter", control.arbiter,
              width=14, seed=53),
        _spec("dec", "epfl", "6-to-64 decoder", control.decoder, bits=6, seed=54),
        _spec("m_ctrl", "epfl", "memory controller", control.mem_ctrl,
              addr_bits=12, banks=8, seed=55),
        _spec("priority", "epfl", "priority encoder", control.priority_encoder,
              width=20, seed=56),
        _spec("voter", "epfl", "majority voter", control.voter,
              width=19, seed=57),
        _spec("log2", "epfl", "log2 approximation", arithmetic.log2_approx,
              width=18, seed=58),
        # ----- ITC'99 -----
        _spec("b14_C", "itc99", "viper-like control", random_logic.itc_like,
              24, 280, 16, 61, datapath_width=5),
        _spec("b14_C2", "itc99", "viper-like control", random_logic.itc_like,
              24, 280, 16, 62, datapath_width=5),
        _spec("b15_C", "itc99", "80386-like control", random_logic.itc_like,
              28, 380, 18, 63, datapath_width=5),
        _spec("b15_C2", "itc99", "80386-like control", random_logic.itc_like,
              28, 380, 18, 64, datapath_width=5),
        _spec("b17_C", "itc99", "3x b15 complexity", random_logic.itc_like,
              30, 520, 20, 65, datapath_width=6),
        _spec("b17_C2", "itc99", "3x b15 complexity", random_logic.itc_like,
              30, 520, 20, 66, datapath_width=6),
        _spec("b20_C", "itc99", "2x b14 copy mix", random_logic.itc_like,
              26, 440, 18, 67, datapath_width=6),
        _spec("b20_C2", "itc99", "2x b14 copy mix", random_logic.itc_like,
              26, 440, 18, 68, datapath_width=6),
        _spec("b21_C", "itc99", "2x b14 copy mix", random_logic.itc_like,
              26, 440, 18, 69, datapath_width=6),
        _spec("b21_C2", "itc99", "2x b14 copy mix", random_logic.itc_like,
              26, 440, 18, 70, datapath_width=6),
        _spec("b22_C", "itc99", "3x b14 copy mix", random_logic.itc_like,
              28, 500, 20, 71, datapath_width=6),
        _spec("b22_C2", "itc99", "3x b14 copy mix", random_logic.itc_like,
              28, 500, 20, 72, datapath_width=6),
    ]
}

#: The two benchmarks Figure 7 traces.
FIG7_BENCHMARKS = ("apex2", "cps")


def benchmark_names() -> list[str]:
    """All 42 benchmark names in suite order."""
    return list(BENCHMARKS)


def build_benchmark(name: str) -> Network:
    """Construct the raw (gate-level) benchmark network."""
    try:
        spec = BENCHMARKS[name]
    except KeyError as exc:
        raise ReproError(f"unknown benchmark {name!r}") from exc
    return spec.build()


def sweep_instance(
    name: str,
    k: int = 6,
    copies: int = 1,
    with_cec_copy: bool = False,
    rewrite_seed: int = 1,
    rewrite_intensity: float = 0.2,
) -> Network:
    """The LUT-mapped sweeping workload for a benchmark (§6.1 flow).

    By default this mirrors the paper exactly: strash the benchmark,
    optionally stack it ``copies`` times (§6.4's ``&putontop``), and map to
    K-input LUTs; the sweeping tool then partitions the LUT outputs into
    equivalence classes.  With ``with_cec_copy=True`` the benchmark is first
    united with a function-preserving rewritten copy of itself over shared
    PIs — a full CEC workload with guaranteed cross-copy equivalences (used
    by the CEC example, not by the table experiments).
    """
    base = build_benchmark(name)
    if with_cec_copy:
        perturbed = rewrite(
            base, seed=rewrite_seed, intensity=rewrite_intensity
        )
        base, _ = union_network(base, perturbed)
    if copies > 1:
        base = put_on_top(base, copies)
    cleaned = strash(base)
    mapped, _ = map_to_luts(cleaned, k=k, name=f"{name}_sweep")
    return mapped
