"""Bench: the sweep performance regression harness (BENCH_perf.json).

Three ways to run it::

    python benchmarks/bench_perf.py [--quick] [-o BENCH_perf.json]
    python -m repro.tools bench [--quick]
    pytest benchmarks/bench_perf.py --benchmark-only   # quick smoke

All delegate to :mod:`repro.experiments.perfbench`, which measures
node-evals/sec plus end-to-end sweep wall-clock for the seed, reference,
and compiled engine variants, asserts their trajectories are
bit-identical, and writes the report JSON.  See ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import sys


def test_perf_quick(benchmark):
    from repro.experiments.perfbench import run_perf_bench

    report = benchmark.pedantic(
        run_perf_bench,
        kwargs={"quick": True, "output": None, "verbose": False},
        rounds=1,
        iterations=1,
    )
    summary = report["summary"]
    print()
    for row in report["workloads"]:
        print(
            f"{row['benchmark']:>10s} {row['strategy']:>10s} "
            f"x{row['copies']}  {row['speedup_vs_seed']:.2f}x vs seed"
        )
    print(f"end-to-end: {summary['end_to_end_speedup_vs_seed']}x vs seed")
    # Identity is asserted inside the harness; here we only require that
    # the compiled engine is not a regression.
    assert summary["end_to_end_speedup_vs_seed"] >= 1.0


if __name__ == "__main__":
    from repro.experiments.perfbench import main

    sys.exit(main(sys.argv[1:]))
