"""Trace analysis: turn a JSONL trace into attribution a human can read.

This is the consumer side of the observability layer — ``repro.tools
trace FILE`` prints, from one recorded sweep/CEC run:

* per-phase wall-time attribution (random / guided / SAT) and how well the
  phase spans reconcile with the run's total wall time;
* the SAT-vs-simulation time split, with SAT time broken down per
  escalation rung and resimulation shown separately;
* the class-refinement curve (Equation-5 cost per step);
* per-wave dispatch sizes and durations of the parallel SAT path;
* the top-k hottest pairs (the SAT queries that ate the run).

The analyzer only reads the documented schema (:mod:`repro.obs.schema`);
it ignores record names it does not know, so downstream tools can add
events without breaking it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(slots=True)
class TraceSummary:
    """Everything :func:`summarize` extracts from one trace."""

    meta: dict = field(default_factory=dict)
    #: Wall time of the outermost ``run`` span (0.0 if absent).
    total_s: float = 0.0
    #: phase name -> wall seconds of its span(s).
    phases: dict = field(default_factory=dict)
    #: (phase, step, cost) refinement curve in record order.
    refinement: list = field(default_factory=list)
    #: SAT call events: list of dicts (rep, member, verdict, conflicts,
    #: rung, dur, wave?, degraded?).
    sat_calls: list = field(default_factory=list)
    #: rung -> summed SAT seconds.
    rung_time: dict = field(default_factory=dict)
    #: Simulation seconds from refine events (per phase) + resim flushes.
    #: Guided refine events split their window: the generator's share goes
    #: to :attr:`simgen_s`, only the remainder counts here.
    sim_event_s: float = 0.0
    #: Guided-vector generation seconds (``gen_s`` of refine events).
    simgen_s: float = 0.0
    resim_s: float = 0.0
    resim_flushes: int = 0
    #: wave index -> {"size": n, "dur": s}.
    waves: dict = field(default_factory=dict)
    #: Final counters dump, if the trace carries one.
    counters: dict = field(default_factory=dict)

    @property
    def sat_s(self) -> float:
        return sum(call.get("dur", 0.0) for call in self.sat_calls)

    @property
    def coverage(self) -> Optional[float]:
        """Fraction of the run covered by phase spans (None without a run)."""
        if not self.total_s:
            return None
        return sum(self.phases.values()) / self.total_s


def summarize(records: list) -> TraceSummary:
    """Aggregate a parsed trace (see :func:`repro.obs.schema.load_trace`)."""
    summary = TraceSummary()
    begin_names: dict[int, dict] = {}
    open_runs: set[int] = set()
    for record in records:
        rtype = record.get("type")
        if rtype == "header":
            summary.meta = record.get("meta", {})
        elif rtype == "begin":
            begin_names[record.get("id")] = record
            if record.get("name") == "run":
                open_runs.add(record.get("id"))
        elif rtype == "end":
            opened = begin_names.pop(record.get("id"), {})
            name = record.get("name", opened.get("name"))
            dur = float(record.get("dur", 0.0))
            if name == "run":
                open_runs.discard(record.get("id"))
                # Only the outermost run span counts toward the total (a
                # CEC run wraps its sweep's run span).
                if not open_runs:
                    summary.total_s += dur
            elif name == "phase":
                phase = opened.get("phase", record.get("phase", "?"))
                summary.phases[phase] = summary.phases.get(phase, 0.0) + dur
            elif name == "wave":
                index = opened.get("wave", len(summary.waves))
                summary.waves[index] = {
                    "size": opened.get("size", 0),
                    "dur": dur,
                }
        elif rtype == "event":
            name = record.get("name")
            if name == "refine":
                summary.refinement.append(
                    (
                        record.get("phase", "?"),
                        record.get("step", len(summary.refinement)),
                        record.get("cost"),
                    )
                )
                gen_s = float(record.get("gen_s", 0.0))
                summary.simgen_s += gen_s
                summary.sim_event_s += float(record.get("dur", 0.0)) - gen_s
            elif name == "sat.call":
                summary.sat_calls.append(record)
                rung = record.get("rung", 0)
                summary.rung_time[rung] = summary.rung_time.get(
                    rung, 0.0
                ) + float(record.get("dur", 0.0))
            elif name == "resim.flush":
                summary.resim_flushes += 1
                summary.resim_s += float(record.get("dur", 0.0))
        elif rtype == "counters":
            summary.counters = record.get("values", {})
    return summary


def _fmt_seconds(seconds: float) -> str:
    return f"{seconds:.4f}s"


def render(summary: TraceSummary, top: int = 5) -> str:
    """Human-readable report of one trace."""
    lines: list[str] = []
    if summary.meta:
        parts = ", ".join(f"{k}={v}" for k, v in sorted(summary.meta.items()))
        lines.append(f"trace meta      : {parts}")
    lines.append(f"total wall time : {_fmt_seconds(summary.total_s)}")
    lines.append("per-phase attribution:")
    for phase, dur in summary.phases.items():
        share = f" ({dur / summary.total_s:5.1%})" if summary.total_s else ""
        lines.append(f"  {phase:<8s} {_fmt_seconds(dur)}{share}")
    coverage = summary.coverage
    if coverage is not None:
        lines.append(
            f"phase coverage  : {coverage:.1%} of the run "
            "(gaps = setup between phases)"
        )
    sat_s = summary.sat_s
    sim_s = summary.sim_event_s + summary.resim_s
    lines.append(
        f"SAT vs sim      : sat {_fmt_seconds(sat_s)} "
        f"({len(summary.sat_calls)} calls) | sim {_fmt_seconds(sim_s)} "
        f"(incl. {summary.resim_flushes} resim flushes, "
        f"{_fmt_seconds(summary.resim_s)}) | "
        f"gen {_fmt_seconds(summary.simgen_s)}"
    )
    if summary.rung_time:
        rungs = "  ".join(
            f"rung{rung} {_fmt_seconds(dur)}"
            for rung, dur in sorted(summary.rung_time.items())
        )
        lines.append(f"SAT per attempt : {rungs}")
    verdicts: dict[str, int] = {}
    degraded = 0
    conflicts = 0
    for call in summary.sat_calls:
        verdicts[call.get("verdict", "?")] = (
            verdicts.get(call.get("verdict", "?"), 0) + 1
        )
        degraded += 1 if call.get("degraded") else 0
        conflicts += int(call.get("conflicts", 0))
    if verdicts:
        counts = "  ".join(f"{k}={v}" for k, v in sorted(verdicts.items()))
        lines.append(
            f"SAT verdicts    : {counts}  conflicts={conflicts}"
            + (f"  degraded={degraded}" if degraded else "")
        )
    solver = {
        key[len("sat.solver."):]: value
        for key, value in summary.counters.items()
        if key.startswith("sat.solver.") and isinstance(value, int)
    }
    if solver:
        parts = []
        for key in ("propagations", "conflicts", "decisions", "restarts"):
            if key in solver:
                parts.append(f"{key}={solver[key]}")
        lines.append(f"solver core     : {'  '.join(parts)}")
        if "arena_bytes" in solver:
            gcs = solver.get("arena_gcs", 0)
            reclaimed = solver.get("arena_words_reclaimed", 0)
            compacted = solver.get("watchers_compacted", 0)
            lines.append(
                f"clause arena    : {solver['arena_bytes']} bytes  "
                f"gcs={gcs}  words_reclaimed={reclaimed}  "
                f"watchers_compacted={compacted}"
            )
    journal = {
        key[len("journal."):]: value
        for key, value in summary.counters.items()
        if key.startswith("journal.") and isinstance(value, int)
    }
    supervision = {
        key[len("pool."):]: value
        for key, value in summary.counters.items()
        if key.startswith("pool.") and isinstance(value, int)
    }
    if journal or supervision:
        parts = []
        if journal:
            parts.append(
                f"journal appends={journal.get('appends', 0)} "
                f"replayed={journal.get('replayed_verdicts', 0)} "
                f"torn_tails={journal.get('torn_tail_truncations', 0)}"
            )
        if supervision:
            parts.append(
                f"pool respawns={supervision.get('respawns', 0)} "
                f"retries={supervision.get('retries', 0)} "
                f"redispatched={supervision.get('pairs_redispatched', 0)} "
                f"hb_missed={supervision.get('heartbeats_missed', 0)}"
            )
        lines.append(f"durable session : {'  |  '.join(parts)}")
    if summary.waves:
        lines.append("waves:")
        for index in sorted(summary.waves):
            wave = summary.waves[index]
            lines.append(
                f"  wave {index:<3d} size {wave['size']:<5d} "
                f"{_fmt_seconds(wave['dur'])}"
            )
    if summary.refinement:
        costs = [cost for _, _, cost in summary.refinement if cost is not None]
        if costs:
            lines.append(
                f"refinement curve: {len(summary.refinement)} steps, "
                f"cost {costs[0]} -> {costs[-1]}"
            )
    hottest = sorted(
        summary.sat_calls, key=lambda c: c.get("dur", 0.0), reverse=True
    )[:top]
    if hottest:
        lines.append(f"top {len(hottest)} hottest pairs:")
        for call in hottest:
            lines.append(
                f"  ({call.get('rep')},{call.get('member')}) "
                f"verdict={call.get('verdict')} rung={call.get('rung', 0)} "
                f"conflicts={call.get('conflicts', 0)} "
                f"{_fmt_seconds(float(call.get('dur', 0.0)))}"
            )
    return "\n".join(lines)
