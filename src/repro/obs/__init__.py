"""Observability: structured tracing + a typed metrics registry.

``repro.obs`` is the substrate every perf claim reports against (see
``docs/OBSERVABILITY.md``): a :class:`Tracer` that records structured
JSONL span/event streams with near-zero overhead when disabled, a
:class:`MetricsRegistry` of typed counters/timers/histograms that the
engines record into, a versioned schema validator, and a trace analyzer
(``repro.tools trace``).
"""

from repro.obs.analyze import TraceSummary, render, summarize
from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    Timer,
)
from repro.obs.schema import (
    TRACE_SCHEMA_VERSION,
    load_trace,
    validate_file,
    validate_records,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    deterministic_projection,
)

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "TRACE_SCHEMA_VERSION",
    "Timer",
    "TraceSummary",
    "Tracer",
    "deterministic_projection",
    "load_trace",
    "render",
    "summarize",
    "validate_file",
    "validate_records",
]
