"""Walkthroughs of the paper's worked examples (Figures 1, 3, 4)."""

import random

from repro.core import (
    Assignment,
    DecisionEngine,
    DecisionStrategy,
    ImplicationEngine,
    ImplicationStrategy,
    SimGenGenerator,
)
from repro.logic import TruthTable
from repro.network import NetworkBuilder, mffc, mffc_depth
from repro.simulation import Simulator


class TestFigure1:
    """Reverse simulation's conflict vs SimGen's implication rescue."""

    def test_implication_chain_from_b(self, fig1_network):
        """Figure 1c: B=0 implies inv_b=1, which with y=1... forces C=0."""
        net, ids = fig1_network
        assignment = Assignment(net)
        assignment.assign(ids["z"], 1)
        engine = ImplicationEngine(net, ImplicationStrategy.ADVANCED)
        outcome = engine.propagate(assignment, [ids["z"]])
        assert not outcome.conflict
        # z = AND(x, y) = 1 forces x = 1 and y = 1;
        # x = AND(A, inv_b) = 1 forces A = 1 and inv_b = 1;
        # inv_b = 1 forces B = 0;
        # y = NAND(inv_b, C) = 1 with inv_b = 1 forces C = 0.
        assert assignment.value(ids["x"]) == 1
        assert assignment.value(ids["y"]) == 1
        assert assignment.value(ids["A"]) == 1
        assert assignment.value(ids["B"]) == 0
        assert assignment.value(ids["C"]) == 0

    def test_simgen_vector_sets_d(self, fig1_network):
        net, ids = fig1_network
        generator = SimGenGenerator(net, seed=0)
        report = generator.generate_for_targets({ids["z"]: 1})
        assert report.conflicts == 0
        vector = {ids["A"]: 1, ids["B"]: 0, ids["C"]: 0}
        assert Simulator(net).run_vector(vector)[ids["z"]] == 1


class TestFigure3:
    """Advanced implication on the f1/f2 example."""

    def _build(self):
        # f1 truth table from Figure 3 (inputs A, B, C / B, D, E in the two
        # instances).  Rows: -01 -> 1 ; 11- -> 0 is NOT the table; we use
        # the published rows: (A,B,C):
        #   - 1 0 | 1
        #   1 0 - | 0   (choose a table realizing these competing rows)
        #   1 1 - | 1
        #   0 0 - | 0
        bits = 0
        for m in range(8):
            a, b, c = m & 1, (m >> 1) & 1, (m >> 2) & 1
            if (b and not c) or (a and b):
                value = 1
            elif b and c:
                value = a  # rows differ on A: advanced must leave A open
            else:
                value = 0
            if value:
                bits |= 1 << m
        return TruthTable(3, bits)

    def test_output_forced_when_rows_agree(self):
        builder = NetworkBuilder()
        a, b, c = builder.pis(3)
        table = self._build()
        f1 = builder.table(table, [a, b, c], "f1")
        builder.po(f1)
        net = builder.build()
        assignment = Assignment(net)
        # B=1, C=0 matches only rows with output 1.
        assignment.assign(b, 1)
        assignment.assign(c, 0)
        engine = ImplicationEngine(net, ImplicationStrategy.ADVANCED)
        engine.propagate(assignment, [b, c])
        assert assignment.value(f1) == 1
        # A stays open: the matching rows disagree on it.
        assert assignment.value(a) is None

    def test_simple_implication_cannot_conclude(self):
        builder = NetworkBuilder()
        a, b, c = builder.pis(3)
        f1 = builder.table(self._build(), [a, b, c], "f1")
        builder.po(f1)
        net = builder.build()
        assignment = Assignment(net)
        assignment.assign(b, 1)
        assignment.assign(c, 0)
        engine = ImplicationEngine(net, ImplicationStrategy.SIMPLE)
        engine.propagate(assignment, [b, c])
        assert assignment.value(f1) is None

    def test_advanced_enables_downstream_implication(self):
        """Figure 3's point: the forced f1 output unlocks f2 = AND."""
        builder = NetworkBuilder()
        a, b, c, d = builder.pis(4)
        f1 = builder.table(self._build(), [a, b, c], "f1")
        f2 = builder.and_(f1, d, "f2")
        builder.po(f2)
        net = builder.build()
        assignment = Assignment(net)
        assignment.assign(b, 1)
        assignment.assign(c, 0)
        assignment.assign(d, 1)
        engine = ImplicationEngine(net, ImplicationStrategy.ADVANCED)
        engine.propagate(assignment, [b, c, d])
        assert assignment.value(f2) == 1


class TestFigure4:
    """The MFFC heuristic keeps shared gate y free."""

    def test_y_not_in_z_mffc(self, fig4_network):
        net, ids = fig4_network
        assert ids["y"] not in mffc(net, ids["z"])

    def test_depths_order_matches_paper(self, fig4_network):
        net, ids = fig4_network
        # x's cone (m, n, x) is deep; y is a singleton.
        assert mffc_depth(net, ids["x"]) > mffc_depth(net, ids["y"])

    def test_decision_at_z_prefers_dc_on_y(self, fig4_network):
        """Propagating z=0 should usually bind x and leave y free."""
        net, ids = fig4_network
        bind_x = bind_y = 0
        for seed in range(300):
            engine = DecisionEngine(
                net, DecisionStrategy.DC_MFFC, random.Random(seed)
            )
            assignment = Assignment(net)
            assignment.assign(ids["z"], 0)
            result = engine.decide(assignment, ids["z"])
            lits = result.row.literals()
            if lits[0] is not None:
                bind_x += 1
            else:
                bind_y += 1
        assert bind_x > bind_y

    def test_conflict_scenario_avoided_by_mffc(self, fig4_network):
        """With D=0 propagated binding x, E=0's implication on t succeeds."""
        net, ids = fig4_network
        assignment = Assignment(net)
        assignment.assign(ids["z"], 0)
        assignment.assign(ids["x"], 0)  # the MFFC-preferred decision
        engine = ImplicationEngine(net, ImplicationStrategy.ADVANCED)
        outcome = engine.propagate(assignment, [ids["z"], ids["x"]])
        assert not outcome.conflict
        # Now propagate E(t) = 1: t = AND(y, p4) forces y = 1 and p4 = 1 —
        # possible only because y was left unassigned.
        assignment.assign(ids["t"], 1)
        outcome = engine.propagate(assignment, [ids["t"]])
        assert not outcome.conflict
        assert assignment.value(ids["y"]) == 1
