"""Node of a Boolean network.

Each node produces a single output bit (paper §2.1).  A node is either a
primary input (no fanins, no function) or a gate/LUT carrying a
:class:`~repro.logic.truthtable.TruthTable` over its fanins.  Constants are
zero-fanin gates with a constant table.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.errors import NetworkError
from repro.logic.truthtable import TruthTable


class NodeKind(Enum):
    """Structural role of a node."""

    PI = "pi"
    GATE = "gate"


@dataclass(slots=True)
class Node:
    """A single-output node in a Boolean network.

    Attributes:
        uid: Network-unique integer id (assigned by the network).
        kind: :class:`NodeKind` — primary input or gate.
        fanins: Ids of fanin nodes, in truth-table variable order
            (fanin ``i`` is table variable ``i``).
        table: The node's function; ``None`` for primary inputs.
        name: Optional human-readable name (from BLIF/BENCH or builders).
    """

    uid: int
    kind: NodeKind
    fanins: tuple[int, ...] = ()
    table: Optional[TruthTable] = None
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind is NodeKind.PI:
            if self.fanins or self.table is not None:
                raise NetworkError(f"PI node {self.uid} cannot have fanins/table")
        else:
            if self.table is None:
                raise NetworkError(f"gate node {self.uid} needs a truth table")
            if self.table.num_vars != len(self.fanins):
                raise NetworkError(
                    f"node {self.uid}: table arity {self.table.num_vars} != "
                    f"{len(self.fanins)} fanins"
                )

    @property
    def is_pi(self) -> bool:
        """True for primary inputs."""
        return self.kind is NodeKind.PI

    @property
    def is_gate(self) -> bool:
        """True for gates/LUTs (including constants)."""
        return self.kind is NodeKind.GATE

    @property
    def is_const(self) -> bool:
        """True for zero-fanin constant gates."""
        return self.is_gate and not self.fanins

    @property
    def num_fanins(self) -> int:
        return len(self.fanins)

    def fanin_index(self, fanin_uid: int) -> int:
        """The truth-table variable position of a fanin id.

        Raises :class:`NetworkError` if the id is not a fanin.  If a node id
        appears multiple times in the fanin list the first position is
        returned.
        """
        try:
            return self.fanins.index(fanin_uid)
        except ValueError as exc:
            raise NetworkError(
                f"node {fanin_uid} is not a fanin of node {self.uid}"
            ) from exc

    def label(self) -> str:
        """Display name: the explicit name or ``n<uid>``."""
        return self.name if self.name is not None else f"n{self.uid}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.is_pi:
            return f"Node(pi {self.label()})"
        return f"Node(gate {self.label()} <- {list(self.fanins)} {self.table})"
