"""Vector-quality metrics (expressiveness / toggle rate)."""

import random

import pytest

from repro.network import NetworkBuilder
from repro.simulation import InputVector, PatternBatch
from repro.simulation.quality import (
    VectorQuality,
    batch_quality,
    distinguishing_power,
)


@pytest.fixture
def xor_chain():
    builder = NetworkBuilder()
    a, b = builder.pis(2)
    g1 = builder.xor_(a, b)
    g2 = builder.not_(g1)
    g3 = builder.and_(a, b)
    builder.po(g2)
    builder.po(g3)
    return builder.build(), (g1, g2, g3)


class TestBatchQuality:
    def test_empty_batch(self, xor_chain):
        net, _ = xor_chain
        batch = PatternBatch(net.pis)
        quality = batch_quality(net, batch)
        assert quality.patterns == 0
        assert quality.toggle_rate == 0.0

    def test_constant_patterns_zero_toggle(self, xor_chain):
        net, nodes = xor_chain
        batch = PatternBatch(net.pis, random.Random(0))
        for _ in range(4):
            batch.add_vector(InputVector({net.pis[0]: 0, net.pis[1]: 0}))
        quality = batch_quality(net, batch, nodes)
        assert quality.toggle_rate == 0.0
        assert quality.constant_fraction == 1.0

    def test_alternating_patterns_full_toggle(self, xor_chain):
        net, nodes = xor_chain
        batch = PatternBatch(net.pis, random.Random(0))
        for p in range(4):
            value = p % 2
            batch.add_vector(
                InputVector({net.pis[0]: value, net.pis[1]: 0})
            )
        # g1 = a ^ 0 toggles every step; g3 = a & 0 stays 0.
        quality = batch_quality(net, batch, [nodes[0], nodes[2]])
        assert quality.toggle_rate == pytest.approx(0.5)

    def test_signature_classes_counts_distinct_behaviour(self, xor_chain):
        net, nodes = xor_chain
        batch = PatternBatch(net.pis, random.Random(0))
        batch.add_vector(InputVector({net.pis[0]: 0, net.pis[1]: 1}))
        batch.add_vector(InputVector({net.pis[0]: 1, net.pis[1]: 1}))
        quality = batch_quality(net, batch, nodes)
        # g1 and g2 are complementary, g3 differs: three signatures unless
        # two coincide on these two patterns.
        assert 1 <= quality.signature_classes <= 3


class TestDistinguishingPower:
    def test_counts_splits_per_class(self, xor_chain):
        net, (g1, g2, g3) = xor_chain
        batch = PatternBatch(net.pis, random.Random(0))
        batch.add_vector(InputVector({net.pis[0]: 1, net.pis[1]: 1}))
        # Under (1,1): g1=0, g2=1, g3=1 -> class {g1,g2,g3} splits into
        # {g1} and {g2,g3}: one split.
        assert distinguishing_power(net, batch, [[g1, g2, g3]]) == 1

    def test_no_patterns_no_splits(self, xor_chain):
        net, (g1, g2, g3) = xor_chain
        batch = PatternBatch(net.pis)
        assert distinguishing_power(net, batch, [[g1, g2]]) == 0

    def test_simgen_vectors_outsplit_random_on_rare_logic(self):
        """The headline property, measured directly on a decoder."""
        from repro.benchgen import sweep_instance
        from repro.core import make_generator
        from repro.sweep import EquivalenceClasses

        net = sweep_instance("dec")
        # Initial classes from a tiny random batch.
        classes = EquivalenceClasses(net)
        seed_batch = PatternBatch(net.pis, random.Random(1))
        seed_batch.add_random(2)
        from repro.simulation import Simulator

        values = Simulator(net).run_batch(seed_batch)
        classes.refine(values, 2)
        splittable = classes.splittable()
        if not splittable:
            pytest.skip("decoder already resolved by the seed batch")

        random_batch = PatternBatch(net.pis, random.Random(2))
        random_batch.add_random(4)

        generator = make_generator("AI+DC+MFFC", net, seed=3)
        vectors = generator.generate(splittable)
        guided_batch = PatternBatch(net.pis, random.Random(2))
        for vector in vectors[:4]:
            guided_batch.add_vector(vector)

        random_splits = distinguishing_power(net, random_batch, splittable)
        guided_splits = distinguishing_power(net, guided_batch, splittable)
        assert guided_splits >= random_splits
