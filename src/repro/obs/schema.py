"""Trace schema (versioned) and its validator.

A trace is a JSONL stream: the first record is a ``header``; every later
record is a ``begin``, ``end``, ``event``, or ``counters``.  The schema is
deliberately small and checked with the standard library only (CI runs the
validator on a freshly recorded sweep trace and fails on unclosed spans,
negative durations, or malformed records — see
``repro.tools trace FILE --validate``).

Schema v1 record shapes
-----------------------

=========  ==================================================================
type       required fields
=========  ==================================================================
header     ``schema`` (int), ``meta`` (object), ``i`` (int)
begin      ``name`` (str), ``id`` (int), ``t`` (number), ``i``
end        ``id`` (int), ``t`` (number), ``dur`` (number >= 0), ``i``
event      ``name`` (str), ``t`` (number), ``i``; optional ``dur`` >= 0
counters   ``values`` (object), ``i``
=========  ==================================================================

Cross-record rules: ``i`` is strictly increasing; the header comes first
and exactly once; every ``begin`` id is closed by exactly one ``end``;
an ``end`` never precedes (or misses) its ``begin``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Union

#: Bump when a record shape changes; the validator rejects unknown versions.
TRACE_SCHEMA_VERSION = 1

_NUMBER = (int, float)


def _check_fields(record: dict, where: str, errors: list[str]) -> None:
    rtype = record.get("type")
    if not isinstance(record.get("i"), int):
        errors.append(f"{where}: missing/invalid sequence field 'i'")
    if rtype == "header":
        if record.get("schema") != TRACE_SCHEMA_VERSION:
            errors.append(
                f"{where}: unsupported schema {record.get('schema')!r} "
                f"(expected {TRACE_SCHEMA_VERSION})"
            )
        if not isinstance(record.get("meta"), dict):
            errors.append(f"{where}: header 'meta' must be an object")
    elif rtype == "begin":
        if not isinstance(record.get("name"), str) or not record.get("name"):
            errors.append(f"{where}: begin requires a non-empty 'name'")
        if not isinstance(record.get("id"), int):
            errors.append(f"{where}: begin requires an integer 'id'")
        if not isinstance(record.get("t"), _NUMBER):
            errors.append(f"{where}: begin requires numeric 't'")
    elif rtype == "end":
        if not isinstance(record.get("id"), int):
            errors.append(f"{where}: end requires an integer 'id'")
        if not isinstance(record.get("t"), _NUMBER):
            errors.append(f"{where}: end requires numeric 't'")
        dur = record.get("dur")
        if not isinstance(dur, _NUMBER):
            errors.append(f"{where}: end requires numeric 'dur'")
        elif dur < 0:
            errors.append(f"{where}: negative duration {dur}")
    elif rtype == "event":
        if not isinstance(record.get("name"), str) or not record.get("name"):
            errors.append(f"{where}: event requires a non-empty 'name'")
        if not isinstance(record.get("t"), _NUMBER):
            errors.append(f"{where}: event requires numeric 't'")
        dur = record.get("dur")
        if dur is not None:
            if not isinstance(dur, _NUMBER):
                errors.append(f"{where}: event 'dur' must be numeric")
            elif dur < 0:
                errors.append(f"{where}: negative duration {dur}")
    elif rtype == "counters":
        if not isinstance(record.get("values"), dict):
            errors.append(f"{where}: counters requires an object 'values'")
    else:
        errors.append(f"{where}: unknown record type {rtype!r}")


def validate_records(records: Iterable[dict]) -> list[str]:
    """Validate parsed trace records; returns the list of problems.

    An empty list means the trace is well-formed: header first, strictly
    increasing sequence numbers, every span closed with a non-negative
    duration.
    """
    errors: list[str] = []
    open_spans: dict[int, str] = {}
    last_seq = -1
    saw_header = False
    count = 0
    for index, record in enumerate(records):
        count += 1
        where = f"record {index}"
        if not isinstance(record, dict):
            errors.append(f"{where}: not a JSON object")
            continue
        _check_fields(record, where, errors)
        seq = record.get("i")
        if isinstance(seq, int):
            if seq <= last_seq:
                errors.append(
                    f"{where}: sequence 'i' not increasing "
                    f"({seq} after {last_seq})"
                )
            last_seq = seq
        rtype = record.get("type")
        if index == 0:
            saw_header = rtype == "header"
            if not saw_header:
                errors.append("record 0: trace must start with a header")
        elif rtype == "header":
            errors.append(f"{where}: duplicate header")
        if rtype == "begin" and isinstance(record.get("id"), int):
            span_id = record["id"]
            if span_id in open_spans:
                errors.append(f"{where}: span id {span_id} already open")
            open_spans[span_id] = record.get("name", "?")
        elif rtype == "end" and isinstance(record.get("id"), int):
            if open_spans.pop(record["id"], None) is None:
                errors.append(
                    f"{where}: end for span id {record['id']} "
                    "without a matching begin"
                )
    if count == 0:
        errors.append("trace is empty")
    for span_id, name in sorted(open_spans.items()):
        errors.append(f"unclosed span: id {span_id} ({name!r})")
    return errors


def load_trace(path: Union[str, Path]) -> list[dict]:
    """Parse a JSONL trace file; raises ``ValueError`` on malformed JSON."""
    records: list[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: invalid JSON: {exc}") from exc
    return records


def validate_file(path: Union[str, Path]) -> list[str]:
    """Parse + validate a trace file; JSON errors become validation errors."""
    try:
        records = load_trace(path)
    except ValueError as exc:
        return [str(exc)]
    return validate_records(records)
