"""Input vectors and pattern batches."""

import random

import pytest

from repro.errors import SimulationError
from repro.simulation import InputVector, PatternBatch


class TestInputVector:
    def test_set_get(self):
        vector = InputVector()
        vector.set(3, 1)
        assert vector.get(3) == 1
        assert vector.get(4) is None

    def test_rejects_non_boolean(self):
        with pytest.raises(SimulationError):
            InputVector().set(0, 2)

    def test_is_complete_for(self):
        vector = InputVector({0: 1, 1: 0})
        assert vector.is_complete_for([0, 1])
        assert not vector.is_complete_for([0, 1, 2])

    def test_completed_fills_free_pis(self):
        vector = InputVector({0: 1})
        completed = vector.completed([0, 1, 2], random.Random(0))
        assert completed.values[0] == 1
        assert set(completed.values) == {0, 1, 2}
        # original untouched
        assert 1 not in vector.values


class TestPatternBatch:
    def test_add_vector_positions(self):
        batch = PatternBatch([0, 1], random.Random(0))
        p0 = batch.add_vector(InputVector({0: 1, 1: 0}))
        p1 = batch.add_vector(InputVector({0: 0, 1: 1}))
        assert (p0, p1) == (0, 1)
        words = batch.words()
        assert words[0] == 0b01
        assert words[1] == 0b10

    def test_free_pis_randomized_deterministically(self):
        batch_a = PatternBatch([0, 1], random.Random(7))
        batch_b = PatternBatch([0, 1], random.Random(7))
        for batch in (batch_a, batch_b):
            batch.add_vector(InputVector({0: 1}))
        assert batch_a.words() == batch_b.words()

    def test_add_random(self):
        batch = PatternBatch([0, 1, 2], random.Random(1))
        batch.add_random(70)
        assert batch.width == 70
        for word in batch.words().values():
            assert 0 <= word < (1 << 70)

    def test_add_random_negative(self):
        with pytest.raises(SimulationError):
            PatternBatch([0]).add_random(-1)

    def test_vector_at_recovers_total_vector(self):
        batch = PatternBatch([0, 1], random.Random(0))
        batch.add_vector(InputVector({0: 1}))
        vector = batch.vector_at(0)
        assert vector.values[0] == 1
        assert vector.values[1] in (0, 1)

    def test_vector_at_out_of_range(self):
        batch = PatternBatch([0])
        with pytest.raises(SimulationError):
            batch.vector_at(0)

    def test_rejects_bad_pi_value(self):
        batch = PatternBatch([0])
        with pytest.raises(SimulationError):
            batch.add_vector({0: 5})

    def test_random_for_network(self, and_or_network):
        net, _ = and_or_network
        batch = PatternBatch.random_for(net, 16, random.Random(0))
        assert batch.width == 16
        assert set(batch.words()) == set(net.pis)
