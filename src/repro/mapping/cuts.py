"""K-feasible cut enumeration (the foundation of LUT mapping).

A *cut* of node ``n`` is a set of nodes (leaves) such that every path from
the PIs to ``n`` crosses a leaf; a cut with at most K leaves can be
implemented as one K-input LUT.  Cuts are enumerated bottom-up: a gate's
cuts are the K-feasible unions of one cut per fanin, plus the trivial cut
``{n}``.  Per node only the ``cut_limit`` best cuts are kept (priority
cuts), ranked by size then average leaf depth.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product


from repro.errors import MappingError
from repro.logic.truthtable import TruthTable
from repro.network.network import Network


@dataclass(frozen=True, slots=True)
class Cut:
    """A cut: its leaves (sorted node ids) and the root it cuts."""

    root: int
    leaves: tuple[int, ...]

    @property
    def size(self) -> int:
        return len(self.leaves)

    def is_trivial(self) -> bool:
        """The unit cut {root}."""
        return self.leaves == (self.root,)

    def dominates(self, other: "Cut") -> bool:
        """True if this cut's leaves are a subset of the other's."""
        return set(self.leaves) <= set(other.leaves)


def enumerate_cuts(
    network: Network, k: int = 6, cut_limit: int = 8
) -> dict[int, list[Cut]]:
    """All priority cuts for every node.

    Args:
        k: Maximum leaves per cut (LUT input count).
        cut_limit: Non-trivial cuts retained per node.
    """
    if k < 1:
        raise MappingError(f"k must be >= 1, got {k}")
    if cut_limit < 1:
        raise MappingError(f"cut_limit must be >= 1, got {cut_limit}")
    levels = network.levels()
    cuts: dict[int, list[Cut]] = {}
    for uid in network.topological_order():
        node = network.node(uid)
        trivial = Cut(uid, (uid,))
        if node.is_pi or node.is_const:
            cuts[uid] = [trivial]
            continue
        candidates: dict[tuple[int, ...], Cut] = {}
        fanin_cut_lists = [cuts[f] for f in node.fanins]
        for combo in product(*fanin_cut_lists):
            leaves = set()
            for cut in combo:
                leaves.update(cut.leaves)
                if len(leaves) > k:
                    break
            if len(leaves) > k:
                continue
            key = tuple(sorted(leaves))
            if key not in candidates:
                candidates[key] = Cut(uid, key)
        ranked = _prune(list(candidates.values()), levels, cut_limit)
        ranked.append(trivial)
        cuts[uid] = ranked
    return cuts


def _prune(candidates: list[Cut], levels: dict[int, int], limit: int) -> list[Cut]:
    """Drop dominated cuts, then keep the ``limit`` best."""
    kept: list[Cut] = []
    for cut in sorted(candidates, key=lambda c: c.size):
        if any(other.dominates(cut) for other in kept):
            continue
        kept.append(cut)

    def rank(cut: Cut) -> tuple:
        depth = max((levels[l] for l in cut.leaves), default=0)
        return (depth, cut.size, cut.leaves)

    kept.sort(key=rank)
    return kept[:limit]


def cut_function(network: Network, cut: Cut) -> TruthTable:
    """The root's function expressed over the cut leaves.

    Table variable ``i`` corresponds to ``cut.leaves[i]``.
    """
    n = len(cut.leaves)
    if n > 16:
        raise MappingError(f"cut with {n} leaves is too wide for a table")
    memo: dict[int, TruthTable] = {
        leaf: TruthTable.var(n, i) for i, leaf in enumerate(cut.leaves)
    }

    def table_of(uid: int) -> TruthTable:
        if uid in memo:
            return memo[uid]
        node = network.node(uid)
        if node.is_pi:
            raise MappingError(
                f"PI {uid} inside cut cone of {cut.root} but not a leaf"
            )
        if node.is_const:
            result = TruthTable.const(n, bool(node.table.bits))
        else:
            result = node.table.compose([table_of(f) for f in node.fanins])
        memo[uid] = result
        return result

    return table_of(cut.root)
