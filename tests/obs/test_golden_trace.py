"""Golden traces: fixed-seed flows emit bit-stable event sequences.

The deterministic projection (volatile timing stripped, pool lifecycle
dropped) of a traced sweep must be identical across repeated runs AND
across worker counts — the trace is part of the deterministic-merge
contract, not a best-effort log.
"""

import pytest

from repro.core.strategies import factory, make_generator
from repro.obs import (
    Tracer,
    deterministic_projection,
    summarize,
    validate_records,
)
from repro.sweep import SweepConfig, SweepEngine, check_equivalence
from tests.conftest import random_network
from tests.sweep.test_parallel import duplicated_network


def traced_sweep(net, jobs, seed=11):
    records = []
    config = SweepConfig(
        seed=seed, jobs=jobs, tracer=Tracer(records, meta={"jobs": jobs})
    )
    generator = make_generator("RandS", net, seed=seed)
    result = SweepEngine(net, generator, config).run()
    return records, result


class TestGoldenSweepTrace:
    def test_trace_validates_clean(self):
        records, _ = traced_sweep(duplicated_network(), jobs=1)
        assert validate_records(records) == []

    def test_repeat_runs_are_bit_stable(self):
        net = duplicated_network()
        first, _ = traced_sweep(net, jobs=1)
        second, _ = traced_sweep(net, jobs=1)
        assert deterministic_projection(first) == deterministic_projection(
            second
        )

    def test_projection_invariant_across_worker_counts(self):
        net = duplicated_network()
        projections = {}
        for jobs in (2, 3):
            records, _ = traced_sweep(net, jobs=jobs)
            assert validate_records(records) == []
            projections[jobs] = deterministic_projection(records)
        assert projections[2] == projections[3]

    def test_trace_counts_match_metrics(self):
        records, result = traced_sweep(duplicated_network(), jobs=2)
        summary = summarize(records)
        assert len(summary.sat_calls) == result.metrics.sat_calls
        verdicts = sum(
            1 for c in summary.sat_calls if c["verdict"] in ("sat", "unsat")
        )
        assert verdicts == result.metrics.proven + result.metrics.disproven
        counters = summary.counters
        assert counters["sweep.sat_calls"] == result.metrics.sat_calls
        assert counters["sweep.proven"] == result.metrics.proven

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_phase_spans_reconcile_with_wall_time(self, jobs):
        records, _ = traced_sweep(duplicated_network(), jobs=jobs)
        summary = summarize(records)
        assert summary.total_s > 0
        # Acceptance bar: attributed phase time covers the run span within
        # 5% (the residue is inter-phase setup: compiles, class bookkeeping).
        assert summary.coverage >= 0.95
        assert sum(summary.phases.values()) <= summary.total_s * 1.02


class TestGoldenCecTrace:
    def test_cec_trace_validates_and_is_worker_invariant(self):
        golden = random_network(seed=5, num_inputs=5, num_gates=20)
        revised = random_network(seed=6, num_inputs=5, num_gates=20)
        projections = {}
        for jobs in (1, 2):
            records = []
            check_equivalence(
                golden,
                revised,
                generator_factory=factory("RandS"),
                config=SweepConfig(
                    seed=7, jobs=jobs, tracer=Tracer(records, meta={})
                ),
            )
            assert validate_records(records) == []
            projections[jobs] = records
        # Serial resolves fallbacks inline, pooled defers them to one batch;
        # the *per-jobs* projection must still be internally repeatable.
        repeat = []
        check_equivalence(
            golden,
            revised,
            generator_factory=factory("RandS"),
            config=SweepConfig(
                seed=7, jobs=2, tracer=Tracer(repeat, meta={})
            ),
        )
        assert deterministic_projection(repeat) == deterministic_projection(
            projections[2]
        )
