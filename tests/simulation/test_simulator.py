"""Bit-parallel simulation cross-checked against per-pattern evaluation."""

import random

import pytest

from repro.errors import SimulationError
from repro.logic import TruthTable
from repro.network import NetworkBuilder
from repro.simulation import (
    PatternBatch,
    Simulator,
    cone_function,
    simulate,
)
from tests.conftest import random_network


def reference_eval(net, assignment):
    """Slow one-pattern reference evaluation via truth tables."""
    values = {}
    for uid in net.topological_order():
        node = net.node(uid)
        if node.is_pi:
            values[uid] = assignment[uid]
        elif node.is_const:
            values[uid] = node.table.bits & 1
        else:
            values[uid] = node.table.evaluate(
                [values[f] for f in node.fanins]
            )
    return values


class TestAgainstReference:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_networks_random_patterns(self, seed):
        net = random_network(seed=seed)
        rng = random.Random(seed + 100)
        batch = PatternBatch(net.pis, rng)
        batch.add_random(32)
        packed = Simulator(net).run_batch(batch)
        for p in range(batch.width):
            vector = batch.vector_at(p)
            reference = reference_eval(net, vector.values)
            for uid in net.node_ids():
                assert (packed[uid] >> p) & 1 == reference[uid], (p, uid)

    def test_single_vector(self, and_or_network):
        net, ids = and_or_network
        out = Simulator(net).run_vector({ids["a"]: 1, ids["b"]: 1, ids["c"]: 0})
        assert out[ids["out"]] == 1
        assert out[ids["inner"]] == 1

    def test_const_nodes(self):
        builder = NetworkBuilder()
        a = builder.pi()
        one = builder.const(True)
        g = builder.and_(a, one)
        builder.po(g)
        net = builder.build()
        sim = Simulator(net)
        values = sim.run_words({a: 0b10}, 2)
        assert values[one] == 0b11
        assert values[g] == 0b10

    def test_missing_pi_rejected(self, and_or_network):
        net, ids = and_or_network
        with pytest.raises(SimulationError):
            Simulator(net).run_words({ids["a"]: 1}, 1)

    def test_width_masks_inputs(self, and_or_network):
        net, ids = and_or_network
        values = Simulator(net).run_words(
            {ids["a"]: 0xFF, ids["b"]: 0xFF, ids["c"]: 0}, 4
        )
        assert values[ids["out"]] == 0xF

    def test_output_words(self, and_or_network):
        net, ids = and_or_network
        sim = Simulator(net)
        values = sim.run_words({ids["a"]: 1, ids["b"]: 1, ids["c"]: 0}, 1)
        assert sim.output_words(values) == {"f": 1}

    def test_one_shot_wrapper(self, and_or_network):
        net, ids = and_or_network
        values = simulate(net, {ids["a"]: 0, ids["b"]: 0, ids["c"]: 1}, 1)
        assert values[ids["out"]] == 1


class TestConeFunction:
    def test_exhaustive_function(self, and_or_network):
        net, ids = and_or_network
        table, support = cone_function(net, ids["out"])
        assert support == sorted([ids["a"], ids["b"], ids["c"]])
        for m in range(8):
            bits = {pi: (m >> i) & 1 for i, pi in enumerate(support)}
            reference = reference_eval(net, bits)
            assert table.output_for(m) == reference[ids["out"]]

    def test_cone_function_of_pi(self, and_or_network):
        net, ids = and_or_network
        table, support = cone_function(net, ids["a"])
        assert support == [ids["a"]]
        assert table == TruthTable.var(1, 0)

    def test_support_cap(self):
        builder = NetworkBuilder()
        xs = builder.pis(8)
        root = builder.reduce_tree("and", xs)
        builder.po(root)
        net = builder.build()
        with pytest.raises(SimulationError):
            cone_function(net, root, max_support=4)

    @pytest.mark.parametrize("seed", range(3))
    def test_cone_function_matches_simulation(self, seed):
        net = random_network(seed=seed, num_inputs=4, num_gates=10)
        for _, po in net.pos:
            table, support = cone_function(net, po)
            for m in range(1 << len(support)):
                assignment = {pi: 0 for pi in net.pis}
                assignment.update(
                    {pi: (m >> i) & 1 for i, pi in enumerate(support)}
                )
                reference = reference_eval(net, assignment)
                assert table.output_for(m) == reference[po]
