"""Function-preserving structural rewrites.

CEC workloads consist of two implementations of the same function; the
benchmark suite manufactures the second implementation by perturbing the
first with rewrites that keep every PO function intact while changing the
internal structure — so the swept union contains genuine cross-copy node
equivalences (to prove) *and* plenty of internal near-misses (to disprove
by simulation).  Three rewrite kinds are applied at random sites:

* **Shannon expansion**: a gate ``f`` becomes ``MUX(f|x=0, f|x=1, x)`` on a
  random fanin, duplicating its logic into two cofactor LUTs.
* **Double negation**: an edge gets two inverters in series.
* **SOP re-synthesis**: a gate is replaced by the two-level AND/OR network
  of its ISOP cover.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.logic import gates
from repro.logic.cubes import isop

from repro.network.network import Network


def shannon_expand(network: Network, uid: int, var_index: int) -> None:
    """Replace gate ``uid`` with a mux over cofactor gates (in place)."""
    node = network.node(uid)
    if not node.is_gate or node.is_const:
        return
    if not 0 <= var_index < node.num_fanins:
        return
    table = node.table
    sel = node.fanins[var_index]
    neg = network.add_gate(
        table.cofactor(var_index, 0), node.fanins
    )
    pos = network.add_gate(
        table.cofactor(var_index, 1), node.fanins
    )
    mux = network.add_gate(gates.mux(), (neg, pos, sel))
    network.replace_node(uid, mux)


def double_negate(network: Network, uid: int, fanin_position: int) -> None:
    """Insert inv(inv(...)) on one fanin edge of ``uid`` (in place)."""
    node = network.node(uid)
    if not node.is_gate or fanin_position >= node.num_fanins:
        return
    driver = node.fanins[fanin_position]
    first = network.add_gate(gates.inv(), (driver,))
    second = network.add_gate(gates.inv(), (first,))
    # Replace only this positional edge (replace_fanin redirects every
    # occurrence of the driver, which is what we want for duplicate edges).
    network.replace_fanin(uid, driver, second)


def sop_resynthesize(network: Network, uid: int) -> None:
    """Replace gate ``uid`` by the AND/OR network of its ISOP (in place)."""
    node = network.node(uid)
    if not node.is_gate or node.is_const or node.num_fanins == 0:
        return
    cubes = isop(node.table)
    if not cubes:
        const = network.add_const(False)
        network.replace_node(uid, const)
        return
    inverters: dict[int, int] = {}

    def inverted(driver: int) -> int:
        if driver not in inverters:
            inverters[driver] = network.add_gate(gates.inv(), (driver,))
        return inverters[driver]

    terms: list[int] = []
    for cube in cubes:
        literals: list[int] = []
        for i, lit in enumerate(cube.literals()):
            if lit is None:
                continue
            driver = node.fanins[i]
            literals.append(driver if lit else inverted(driver))
        if not literals:
            terms.append(network.add_const(True))
            continue
        term = literals[0]
        for extra in literals[1:]:
            term = network.add_gate(gates.and_gate(2), (term, extra))
        terms.append(term)
    total = terms[0]
    for extra in terms[1:]:
        total = network.add_gate(gates.or_gate(2), (total, extra))
    network.replace_node(uid, total)


def rewrite(
    network: Network,
    seed: int = 0,
    intensity: float = 0.3,
    name: Optional[str] = None,
) -> Network:
    """A functionally equivalent, structurally perturbed copy.

    Args:
        intensity: Approximate fraction of gates receiving one rewrite.
    """
    rng = random.Random(seed)
    copy, _ = network.map_clone(name or f"{network.name}_rw")
    candidates = [
        node.uid
        for node in copy.nodes()
        if node.is_gate and not node.is_const and node.num_fanins >= 1
    ]
    rng.shuffle(candidates)
    count = max(1, int(len(candidates) * intensity))
    for uid in candidates[:count]:
        node = copy.node(uid)
        if uid not in copy or not node.is_gate:
            continue
        choice = rng.random()
        if choice < 0.4 and node.num_fanins >= 2:
            shannon_expand(copy, uid, rng.randrange(node.num_fanins))
        elif choice < 0.7:
            double_negate(copy, uid, rng.randrange(max(1, node.num_fanins)))
        else:
            sop_resynthesize(copy, uid)
    copy.remove_dangling()
    return copy
