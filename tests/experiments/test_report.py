"""Plain-text table/figure rendering."""

import pytest

from repro.experiments.report import (
    format_bar,
    format_iteration_trace,
    format_series_chart,
    format_table,
)


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ["name", "value"], [["a", 1], ["long-name", 22]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_column_widths_fit_content(self):
        text = format_table(["x"], [["wide-cell-content"]])
        header, rule, row = text.splitlines()
        assert len(row) >= len("wide-cell-content")


class TestFormatBar:
    def test_negative_draws_left(self):
        bar = format_bar(-0.5, scale=1.0, width=20)
        left, right = bar[1:-1].split("|")
        assert "#" in left and "#" not in right

    def test_positive_draws_right(self):
        bar = format_bar(0.5, scale=1.0, width=20)
        left, right = bar[1:-1].split("|")
        assert "#" in right and "#" not in left

    def test_clamped_to_full_width(self):
        bar = format_bar(-5.0, scale=1.0, width=20)
        left, _ = bar[1:-1].split("|")
        assert left == "#" * 10

    def test_zero_scale_rejected(self):
        with pytest.raises(ValueError):
            format_bar(0.1, scale=0)


class TestCharts:
    def test_series_chart_structure(self):
        text = format_series_chart(
            "title", ["bm1"], {"cost": [-0.2], "sat": [0.1]}
        )
        assert "title" in text
        assert "bm1:" in text
        assert "-20.0%" in text
        assert "+10.0%" in text

    def test_iteration_trace(self):
        text = format_iteration_trace("t", {"RandS": [10, 8, 8]})
        assert "RandS" in text
        assert "10" in text
