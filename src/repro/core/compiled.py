"""Compiled SimGen kernel: Algorithm 1 lowered onto dense slot arrays.

The reference engines (:class:`~repro.core.implication.ImplicationEngine`,
:class:`~repro.core.decision.DecisionEngine`,
:class:`~repro.core.assignment.Assignment`) interpret Algorithm 1 over
uid-keyed dicts: every pin read is a dict probe, every memo hit hashes a
tuple, and every decision re-filters truth-table rows.  This module
applies the same lower-once design as
:class:`~repro.simulation.compiled.CompiledSimulator` to the *generation*
side of the paper:

* nodes get **dense slot indices** in topological order; the assignment is
  a flat list (``-1`` = unassigned) plus a trail of slots, and a conflict
  reverts by truncating the trail back to a marker — never by copying or
  rebuilding the assignment;
* each gate's pin state is a packed integer pair
  ``(known_mask, known_values)`` maintained **incrementally**: assigning a
  node flips one bit in each fanout gate's pair, reverting clears it, so
  an examination never iterates fanins to rediscover what is known;
* the packed state (plus the output value) indexes a **transition table**:
  a flat array, allocated once per distinct ``(function, strategy)``, whose
  entries are the forced pins (or the conflict marker) the reference
  engine would derive for that state.  Small-arity tables are fully
  enumerated at compile time; larger ones resolve states on first touch
  and every repeat is a single list index.  The same array doubles as the
  decision-candidate cache (which rows would be offered at that state).
  Tables are shared across gates and kernel instances via a module cache
  (LUT networks reuse few functions);
* the implication fixpoint is an explicit worklist over slots that only
  re-examines gates whose pins changed — the same order as the reference
  engine's queue, so the assignment trail (and hence every later decision)
  is identical;
* decision rows, their Equation-4 priorities (including the MFFC ranks of
  Equation 3), and per-target cone membership are compiled **once per
  network** instead of rediscovered per call.

:class:`CompiledSimGenGenerator` drives the kernel through the unchanged
Algorithm-1 control flow and consumes the RNG in exactly the reference
order, so vectors, survivors, reports, and whole sweep trajectories are
**bit-identical** to :class:`~repro.core.generator.SimGenGenerator` (the
property suite in ``tests/core/test_compiled_kernel.py`` and the perfbench
identity gate both enforce this).
"""

from __future__ import annotations

import random
import threading
from collections import deque
from typing import Mapping, Optional, Sequence

from repro.core.decision import (
    DEFAULT_ALPHA,
    DEFAULT_BETA,
    DecisionStrategy,
    roulette_select,
)
from repro.core.generator import GenerationReport, SimGenGenerator
from repro.core.implication import ImplicationStrategy
from repro.core.outgold import OutgoldStrategy, alternating_outgold
from repro.errors import GenerationError
from repro.logic.cubes import packed_rows
from repro.network.cones import MffcCache
from repro.network.network import Network
from repro.simulation.compiled import CompiledSimulator

#: Backend names accepted by the seam (``SweepConfig.simgen_backend``,
#: ``make_generator(simgen_backend=...)``, ``--simgen-backend``).
GENERATOR_BACKENDS = ("batch", "compiled", "reference")

#: Gates with at most this many fanins get their transition table fully
#: enumerated at compile time (``3 ** (k + 1)`` reachable states); larger
#: tables are allocated up front but resolve states lazily on first touch.
#: k=4 costs ~0.2ms per distinct function at compile time and keeps every
#: 4-input LUT off the lazy path; k=5 tables are 4x bigger again and mostly
#: touched sparsely, so they stay lazy.
EAGER_ENUM_LIMIT = 4

#: Total cap on cached roulette weight lists across a kernel's gates.
#: Overflow clears every per-gate weights cache (a pure cache — weights
#: are a deterministic function of the gate state, so trajectories are
#: unaffected) and counts dropped entries in
#: ``stats["weights_evictions"]``.
WEIGHTS_CACHE_CAP = 1 << 16


class KernelConflict(Exception):
    """A kernel assignment contradicted an existing value.

    The compiled twin of :class:`~repro.core.assignment.Conflict`; carries
    no payload because Algorithm 1 only needs the control transfer.
    """


class _TransitionTable:
    """Flat implication + decision lookup for one gate function.

    A pin state packs as ``(output + 1) * 4**k + (known_mask << k) |
    known_values`` (``output`` is ``-1`` when unassigned).  Two parallel
    lazy arrays are indexed by it:

    * ``states[index]`` — the forced pins as a tuple of ``(pin_index,
      value)`` pairs (pin index ``k`` is the output), ``None`` when the
      state is contradictory, or ``False`` when unresolved;
    * ``decisions[index]`` — the candidate row indices a decision at that
      state would choose among (``None`` contradiction, ``()`` no decision
      needed, ``False`` unresolved), mirroring
      :meth:`~repro.core.decision.DecisionEngine.candidate_rows`.
    """

    __slots__ = (
        "k",
        "rows",
        "rows_by_output",
        "advanced",
        "stride",
        "states",
        "decisions",
        "resolved",
    )

    def __init__(
        self,
        rows: tuple[tuple[int, int, int], ...],
        k: int,
        advanced: bool,
    ):
        self.k = k
        self.rows = rows
        #: Rows pre-filtered by assigned output (-1 = all rows), so lazy
        #: resolution skips the per-row output compare.
        self.rows_by_output = (
            rows,
            tuple(r for r in rows if r[2] == 0),
            tuple(r for r in rows if r[2] == 1),
        )
        self.advanced = advanced
        self.stride = 1 << (2 * k)
        self.states: list = [False] * (3 * self.stride)
        self.decisions: list = [False] * (3 * self.stride)
        #: States resolved so far (``simgen.kernel.transition_states``).
        self.resolved = 0
        if k <= EAGER_ENUM_LIMIT:
            self._enumerate()

    def _enumerate(self) -> None:
        """Resolve every reachable state (``values`` a submask of ``mask``)."""
        k = self.k
        for output in (-1, 0, 1):
            for mask in range(1 << k):
                values = mask
                while True:  # submask enumeration of `mask`, including 0
                    self.resolve(
                        (output + 1) * self.stride + (mask << k) + values,
                        mask,
                        values,
                        output,
                    )
                    if values == 0:
                        break
                    values = (values - 1) & mask

    def resolve(
        self, index: int, known_mask: int, known_values: int, output: int
    ):
        """Resolve one packed implication state.

        Mirrors ``ImplicationEngine._examine_state`` exactly (``output`` is
        ``-1`` for unassigned).  Returns the stored entry.
        """
        self.resolved += 1
        if output < 0 and not known_mask:
            forced: Optional[tuple] = ()
            self.states[index] = forced
            return forced
        # One fused pass over the (output-filtered) rows: track the match
        # count and fold the advanced-mode intersection on the fly instead
        # of materializing the matching-row list first.
        advanced = self.advanced
        count = 0
        base_vals = base_out = 0
        forced_mask = 0
        out_agree = output < 0
        for mask, vals, out in self.rows_by_output[output + 1]:
            if (vals ^ known_values) & (mask & known_mask):
                continue
            if count == 0:
                base_vals = vals
                base_out = out
                forced_mask = mask & ~known_mask
            else:
                if not advanced:
                    # Two or more matches without advanced implications:
                    # nothing is forced.
                    forced = ()
                    self.states[index] = forced
                    return forced
                forced_mask &= mask & ~(vals ^ base_vals)
                if out != base_out:
                    out_agree = False
                if not forced_mask and not out_agree:
                    forced = ()
                    self.states[index] = forced
                    return forced
            count += 1
        if count == 0:
            self.states[index] = None
            return None
        result: list[tuple[int, int]] = []
        i = 0
        fm = forced_mask
        while fm:
            if fm & 1:
                result.append((i, (base_vals >> i) & 1))
            fm >>= 1
            i += 1
        if out_agree:
            # Single match: append iff the output was unassigned; multi
            # match: append iff every matching row agrees on the output.
            result.append((self.k, base_out))
        forced = tuple(result)
        self.states[index] = forced
        return forced

    def resolve_decision(
        self, index: int, known_mask: int, known_values: int, output: int
    ):
        """Resolve one packed decision state.

        Mirrors ``DecisionEngine.candidate_rows`` exactly: ``None`` on
        contradiction, ``()`` when the node needs no decision, else the
        candidate row indices in row order.
        """
        rows = self.rows
        matching = [
            i
            for i, row in enumerate(rows)
            if (output < 0 or row[2] == output)
            and not (row[1] ^ known_values) & (row[0] & known_mask)
        ]
        if not matching:
            self.decisions[index] = None
            return None
        useful: list[int] = []
        for i in matching:
            binds_new = rows[i][0] & ~known_mask
            if not binds_new and output >= 0:
                # A matching row whose bound pins are all assigned covers
                # every completion: the node needs no decision at all.
                useful = []
                break
            if binds_new or output < 0:
                useful.append(i)
        # When no early break fires every matching row is useful, so an
        # empty tuple unambiguously encodes "no decision needed".
        result = tuple(useful)
        self.decisions[index] = result
        return result


#: Shared-table cache bound (distinct ``(rows, k, advanced)`` functions).
#: LUT networks reuse few functions, so the cap is generous; long-running
#: processes sweeping many unrelated networks stay bounded regardless.
#: Eviction drops the cache's reference only — kernels built earlier keep
#: theirs, so nothing live is invalidated.
TRANSITION_CACHE_CAP = 512

#: (rows, k, advanced) -> shared transition table.  Gate functions recur
#: across gates and networks, so tables amortize like the ISOP/eval-plan
#: caches.  ``k`` must be part of the key: a gate that ignores its highest
#: pins produces the same rows as its lower-arity twin, but the packed
#: index layout (stride ``4**k``) differs.  Insertion order doubles as LRU
#: order (hits reinsert), bounded by :data:`TRANSITION_CACHE_CAP`.
_TRANSITION_CACHE: dict[
    tuple[tuple[tuple[int, int, int], ...], int, bool], _TransitionTable
] = {}

#: Guards the cache dict *and* the counters below.  The serve daemon
#: builds kernels from several job threads at once; unlocked
#: read-modify-write on the counters would lose increments, and two
#: threads racing the eviction loop could each pop a survivor.  The lock
#: is per *kernel build* (once per distinct gate function), never on the
#: per-vector hot path.
_TRANSITION_LOCK = threading.Lock()

_TRANSITION_EVICTIONS = 0
_TRANSITION_HITS = 0
_TRANSITION_MISSES = 0


def transition_table(
    rows: tuple[tuple[int, int, int], ...], k: int, advanced: bool
) -> _TransitionTable:
    """The shared transition table for one gate function (thread-safe)."""
    global _TRANSITION_EVICTIONS, _TRANSITION_HITS, _TRANSITION_MISSES
    key = (rows, k, advanced)
    with _TRANSITION_LOCK:
        table = _TRANSITION_CACHE.get(key)
        if table is None:
            _TRANSITION_MISSES += 1
            while len(_TRANSITION_CACHE) >= TRANSITION_CACHE_CAP:
                _TRANSITION_CACHE.pop(next(iter(_TRANSITION_CACHE)))
                _TRANSITION_EVICTIONS += 1
            table = _TRANSITION_CACHE[key] = _TransitionTable(
                rows, k, advanced
            )
        else:
            _TRANSITION_HITS += 1
            # LRU touch: reinsert so the hot tail survives evictions.
            del _TRANSITION_CACHE[key]
            _TRANSITION_CACHE[key] = table
        return table


def transition_cache_info() -> dict:
    """Cache occupancy and lifetime hit/miss/eviction counters.

    Read under the lock so concurrent sessions observe a conserved
    snapshot: ``hits + misses`` equals the lookups issued, and every miss
    corresponds to exactly one table construction.
    """
    with _TRANSITION_LOCK:
        return {
            "size": len(_TRANSITION_CACHE),
            "cap": TRANSITION_CACHE_CAP,
            "hits": _TRANSITION_HITS,
            "misses": _TRANSITION_MISSES,
            "evictions": _TRANSITION_EVICTIONS,
        }


def clear_transition_cache() -> None:
    """Drop every shared transition table (perf-harness cold starts).

    The hit/miss/eviction counters are lifetime-monotonic and survive
    clears.
    """
    with _TRANSITION_LOCK:
        _TRANSITION_CACHE.clear()


class CompiledSimGenKernel:
    """Assignment + implication + decision lowered onto slot arrays.

    One kernel serves one static network (the usual compile-once contract).
    The public API speaks uids at the edges (tests, generator glue) and
    slots on the hot paths.
    """

    def __init__(
        self,
        network: Network,
        implication_strategy: ImplicationStrategy = ImplicationStrategy.ADVANCED,
        decision_strategy: DecisionStrategy = DecisionStrategy.DC_MFFC,
        alpha: float = DEFAULT_ALPHA,
        beta: float = DEFAULT_BETA,
        mffc: Optional[MffcCache] = None,
        impl_stats: Optional[dict] = None,
        dec_stats: Optional[dict] = None,
    ):
        self.network = network
        self.implication_strategy = implication_strategy
        self.decision_strategy = decision_strategy
        self.alpha = alpha
        self.beta = beta
        order = network.topological_order()
        n = len(order)
        self._uids: list[int] = list(order)
        self._slot_of: dict[int, int] = {uid: s for s, uid in enumerate(order)}
        slot_of = self._slot_of

        #: Flat assignment: -1 unassigned, else 0/1.  Trail = assigned slots
        #: in assignment order; revert truncates back to a marker.
        self._values: list[int] = [-1] * n
        self._trail: list[int] = []

        self._is_pi = bytearray(n)
        #: Per slot: the gate's **complete transition-table index**,
        #: maintained incrementally.  The packing ``(output + 1) * 4**k +
        #: (known_mask << k) + known_values`` keeps the three components in
        #: disjoint bit fields, so assigning a pin or the output is a
        #: single addition (and reverting a subtraction) with no carries —
        #: an examination is then just ``states[state[slot]]``.
        self._state: list[int] = [0] * n
        #: Per slot: the mask field fully populated (``full_mask << k``);
        #: ``state & full_bits == full_bits`` iff every fanin is assigned.
        #: 0 for PIs/constants, so the same test skips them.
        self._full_bits: list[int] = [0] * n
        #: Per slot: the output field's unit (``4**k`` for gates, 0 for
        #: PIs/constants) — assigning output value v adds ``unit << v``.
        self._out_delta: list[int] = [0] * n
        #: Per slot: pin positions this node drives, as (gate_slot, d0, d1)
        #: triples where d0/d1 are the index deltas for binding the pin to
        #: 0/1 (duplicated fanins get several entries).
        self._pin_positions: list[tuple[tuple[int, int, int], ...]] = [()] * n
        #: Per slot: fanin slot tuple (None for PIs/constants).
        self._fanins: list[Optional[tuple[int, ...]]] = [None] * n
        #: Per slot: slots to re-examine when the slot's value changes
        #: (the slot itself plus its fanouts), reference order.
        self._examiners: list[tuple[int, ...]] = [()] * n
        self._tables: list[Optional[_TransitionTable]] = [None] * n
        #: Per slot: ``(table, states, stride, k, fanins)`` pre-unpacked
        #: for the fixpoint loop (one list index + tuple unpack instead of
        #: repeated attribute lookups per examination); None for PIs and
        #: constants.  ``states`` aliases ``table.states``, which lazy
        #: resolution mutates in place — the alias stays valid.
        self._exam: list[Optional[tuple]] = [None] * n
        #: Per slot: the table's ``states`` list alone (None for PIs and
        #: constants) — the examination hot path reads only this; the full
        #: ``_exam`` tuple is loaded just on cold resolves and forcings.
        self._states_of: list[Optional[list]] = [None] * n
        #: Per slot: packed decision rows (aligned with the reference
        #: ``rows_of`` order) and their precomputed Equation-4 priorities.
        self._rows: list[Optional[tuple[tuple[int, int, int], ...]]] = [None] * n
        self._priorities: list[Optional[list[float]]] = [None] * n
        #: Per slot: state index -> roulette weights (bounded, see
        #: :data:`WEIGHTS_CACHE_CAP`); None for PIs/constants.
        self._weights: list[Optional[dict]] = [None] * n
        self._weights_entries = 0
        self._queued = bytearray(n)
        #: Reused fixpoint worklist (empty between propagate calls).
        self._queue: deque[int] = deque()

        #: Shared with the reference engines' dicts when provided, so the
        #: registry sees one ``simgen.implication.* / simgen.decision.*``
        #: stream regardless of backend.
        self.impl_stats = impl_stats if impl_stats is not None else {
            "propagate_calls": 0,
            "examinations": 0,
            "forced_assignments": 0,
            "conflicts": 0,
        }
        self.dec_stats = dec_stats if dec_stats is not None else {
            "decisions": 0,
            "conflicts": 0,
            "rows_committed": 0,
        }
        #: Kernel-only counters (published as ``simgen.kernel.*``).
        self.stats = {
            "compiled_nodes": n,
            "transition_tables": 0,
            "reverted_assignments": 0,
            "weights_evictions": 0,
        }

        advanced = implication_strategy is ImplicationStrategy.ADVANCED
        use_mffc = decision_strategy is DecisionStrategy.DC_MFFC
        score_rows = decision_strategy is not DecisionStrategy.RANDOM
        mffc_cache = mffc if mffc is not None else MffcCache(network)
        tables_seen: set[int] = set()
        positions: list[list[tuple[int, int, int]]] = [[] for _ in range(n)]
        for uid in order:
            node = network.node(uid)
            slot = slot_of[uid]
            self._examiners[slot] = tuple(
                slot_of[f] for f in (uid, *network.fanouts(uid))
            )
            if node.is_pi:
                self._is_pi[slot] = 1
                continue
            if node.is_const:
                continue
            fanins = tuple(node.fanins)
            k = len(fanins)
            fanin_slots = tuple(slot_of[f] for f in fanins)
            self._fanins[slot] = fanin_slots
            self._full_bits[slot] = ((1 << k) - 1) << k
            self._out_delta[slot] = 1 << (2 * k)
            for i, fslot in enumerate(fanin_slots):
                mask_delta = 1 << (i + k)
                positions[fslot].append(
                    (slot, mask_delta, mask_delta + (1 << i))
                )
            rows = packed_rows(node.table)
            table = transition_table(rows, k, advanced)
            if id(table) not in tables_seen:
                tables_seen.add(id(table))
                self.stats["transition_tables"] += 1
            self._tables[slot] = table
            self._exam[slot] = (
                table,
                table.states,
                table.stride,
                k,
                fanin_slots,
            )
            self._states_of[slot] = table.states
            self._rows[slot] = rows
            if score_rows:
                priorities: list[float] = []
                for mask, _vals, _out in rows:
                    # Exact float-op order of DecisionEngine.priority: the
                    # compiled weights must be bit-equal for the roulette
                    # to draw identically.
                    value = alpha * (k - mask.bit_count())
                    if use_mffc:
                        rank = 0.0
                        for i in range(k):
                            if (mask >> i) & 1:
                                rank += mffc_cache.depth(fanins[i])
                        value += beta * rank
                    priorities.append(value)
                self._priorities[slot] = priorities
                self._weights[slot] = {}
        self._pin_positions = [tuple(p) for p in positions]

    # ------------------------------------------------------------------
    # Assignment surface (uids at the edges, slots inside)
    # ------------------------------------------------------------------
    def slot(self, uid: int) -> int:
        """The dense slot index of a node."""
        return self._slot_of[uid]

    def _evict_weights(self) -> None:
        """Drop every cached weight list once the total cap is exceeded.

        Pure caches of the Equation-4 roulette weights: clearing only
        costs recomputation, never a trajectory change.
        """
        self.stats["weights_evictions"] += self._weights_entries
        for cache in self._weights:
            if cache is not None:
                cache.clear()
        self._weights_entries = 0

    def _set(self, slot: int, value: int) -> None:
        """Record a fresh assignment and update affected table indices."""
        self._values[slot] = value
        self._trail.append(slot)
        state = self._state
        if value:
            for g, _, d1 in self._pin_positions[slot]:
                state[g] += d1
            state[slot] += self._out_delta[slot] << 1
        else:
            for g, d0, _ in self._pin_positions[slot]:
                state[g] += d0
            state[slot] += self._out_delta[slot]

    def _unwind(self, slots: Sequence[int]) -> None:
        """Clear assignments and undo their table-index deltas."""
        values = self._values
        state = self._state
        pin_positions = self._pin_positions
        out_delta = self._out_delta
        for slot in slots:
            value = values[slot]
            values[slot] = -1
            if value:
                for g, _, d1 in pin_positions[slot]:
                    state[g] -= d1
                state[slot] -= out_delta[slot] << 1
            else:
                for g, d0, _ in pin_positions[slot]:
                    state[g] -= d0
                state[slot] -= out_delta[slot]

    def reset(self) -> None:
        """Clear the assignment (O(assigned), not O(network))."""
        self._unwind(self._trail)
        self._trail.clear()

    def checkpoint(self) -> int:
        """Opaque trail marker (Algorithm 1 line 4)."""
        return len(self._trail)

    def revert(self, marker: int) -> None:
        """Backtrack to a marker by unwinding the trail (line 12)."""
        trail = self._trail
        if not 0 <= marker <= len(trail):
            raise GenerationError(f"invalid checkpoint marker {marker}")
        self._unwind(trail[marker:])
        self.stats["reverted_assignments"] += len(trail) - marker
        del trail[marker:]

    def assign_uid(self, uid: int, value: int) -> bool:
        """Assign by uid; True when fresh.  Raises :class:`KernelConflict`."""
        if value not in (0, 1):
            raise GenerationError(f"assignment value must be 0/1, got {value!r}")
        slot = self._slot_of[uid]
        current = self._values[slot]
        if current >= 0:
            if current != value:
                raise KernelConflict()
            return False
        self._set(slot, value)
        return True

    def value(self, uid: int) -> Optional[int]:
        """The assigned value of a node, or ``None`` (reference API)."""
        v = self._values[self._slot_of[uid]]
        return None if v < 0 else v

    def __len__(self) -> int:
        return len(self._trail)

    def trail_uids(self) -> list[int]:
        """Assigned node ids in assignment order."""
        uids = self._uids
        return [uids[slot] for slot in self._trail]

    def pi_values(self) -> dict[int, int]:
        """Assigned PI values in assignment order (the generated vector)."""
        uids = self._uids
        values = self._values
        is_pi = self._is_pi
        return {
            uids[slot]: values[slot] for slot in self._trail if is_pi[slot]
        }

    def as_dict(self) -> dict[int, int]:
        """All assigned values in assignment order."""
        uids = self._uids
        values = self._values
        return {uids[slot]: values[slot] for slot in self._trail}

    def pis_set(self, pi_slots: Sequence[int]) -> bool:
        """Algorithm 1's ``PIsSet`` over precompiled cone PI slots."""
        values = self._values
        for slot in pi_slots:
            if values[slot] < 0:
                return False
        return True

    # ------------------------------------------------------------------
    # Implication fixpoint (paper §4)
    # ------------------------------------------------------------------
    def propagate(self, seed_slots: Sequence[int]) -> tuple[bool, int]:
        """Run implications to fixpoint from the seed slots.

        Returns ``(conflict, assigned)``.  Examination order matches the
        reference worklist exactly (FIFO over the same examiner tuples), so
        the trail the fixpoint leaves behind is identical.
        """
        values = self._values
        trail = self._trail
        examiners = self._examiners
        exam = self._exam
        states_of = self._states_of
        state = self._state
        pin_positions = self._pin_positions
        out_delta = self._out_delta
        queued = self._queued
        queue = self._queue
        push = queue.append
        pop = queue.popleft
        assigned = 0
        conflict = False
        examined = 0

        for seed in seed_slots:
            for cand in examiners[seed]:
                if not queued[cand]:
                    queued[cand] = 1
                    push(cand)
        try:
            while queue:
                slot = pop()
                queued[slot] = 0
                examined += 1
                states = states_of[slot]
                if states is None:  # PI or constant: nothing to force
                    continue
                index = state[slot]
                forced = states[index]
                if forced is False:
                    # First touch of this state: unpack the index fields
                    # and resolve through the table (cold path).
                    table, _, stride, k, _ = exam[slot]
                    output = index // stride - 1
                    rem = index - (output + 1) * stride
                    forced = table.resolve(
                        index, rem >> k, rem & ((1 << k) - 1), output
                    )
                if forced is None:
                    conflict = True
                    return True, assigned
                if not forced:
                    continue
                _, _, _, k, fanins = exam[slot]
                for i, value in forced:
                    target = slot if i == k else fanins[i]
                    current = values[target]
                    if current >= 0:
                        if current != value:
                            # Forced values can clash at a node shared with
                            # another pending implication path.
                            conflict = True
                            return True, assigned
                        continue
                    values[target] = value
                    trail.append(target)
                    assigned += 1
                    if value:
                        for g, _, d1 in pin_positions[target]:
                            state[g] += d1
                        state[target] += out_delta[target] << 1
                    else:
                        for g, d0, _ in pin_positions[target]:
                            state[g] += d0
                        state[target] += out_delta[target]
                    for cand in examiners[target]:
                        if not queued[cand]:
                            queued[cand] = 1
                            push(cand)
            return False, assigned
        finally:
            if conflict:
                # Early exits leave the worklist populated; drain it so the
                # next propagate starts clean.
                for slot in queue:
                    queued[slot] = 0
                queue.clear()
            stats = self.impl_stats
            stats["propagate_calls"] += 1
            stats["examinations"] += examined
            stats["forced_assignments"] += assigned
            if conflict:
                stats["conflicts"] += 1

    def propagate_uids(self, seeds: Sequence[int]) -> tuple[bool, int]:
        """:meth:`propagate` with uid seeds (tests / external callers)."""
        slot_of = self._slot_of
        return self.propagate([slot_of[uid] for uid in seeds])

    # ------------------------------------------------------------------
    # Decisions (paper §5)
    # ------------------------------------------------------------------
    def candidate_row_indices(self, slot: int):
        """Indices (into the slot's packed rows) the reference
        ``DecisionEngine.candidate_rows`` would return.

        ``None`` on contradiction, empty when no decision is needed.
        """
        table = self._tables[slot]
        if table is None:  # PI or constant
            return ()
        index = self._state[slot]
        indices = table.decisions[index]
        if indices is False:
            stride = table.stride
            k = table.k
            output = index // stride - 1
            rem = index - (output + 1) * stride
            indices = table.resolve_decision(
                index, rem >> k, rem & ((1 << k) - 1), output
            )
        return indices

    def candidate_rows_uid(
        self, uid: int
    ) -> Optional[list[tuple[int, int, int]]]:
        """Candidate rows of a node as packed triples (test introspection)."""
        indices = self.candidate_row_indices(self._slot_of[uid])
        if indices is None:
            return None
        rows = self._rows[self._slot_of[uid]]
        return [rows[i] for i in indices]

    def decide(
        self, slot: int, rng: random.Random
    ) -> tuple[bool, list[int]]:
        """Pick and commit one row at ``slot`` (Definition 2.3).

        Returns ``(conflict, assigned_slots)``; RNG consumption matches
        :meth:`DecisionEngine.decide` exactly (same draws, same weights).
        """
        stats = self.dec_stats
        stats["decisions"] += 1
        table = self._tables[slot]
        if table is None:  # PI or constant: nothing to decide
            return False, []
        index = self._state[slot]
        indices = table.decisions[index]
        if indices is False:
            stride = table.stride
            k = table.k
            output = index // stride - 1
            rem = index - (output + 1) * stride
            indices = table.resolve_decision(
                index, rem >> k, rem & ((1 << k) - 1), output
            )
        if indices is None:
            stats["conflicts"] += 1
            return True, []
        if not indices:
            return False, []
        stats["rows_committed"] += 1
        rows = self._rows[slot]
        if self.decision_strategy is DecisionStrategy.RANDOM:
            chosen = rng.choice(indices)
        else:
            cache = self._weights[slot]
            weights = cache.get(index)
            if weights is None:
                table_priorities = self._priorities[slot]
                priorities = [table_priorities[i] for i in indices]
                # Same shift-before-roulette transform as the reference
                # (see DecisionEngine.decide for the rationale).  Weights
                # are a pure function of (slot, state), so they are cached
                # bounded per kernel; a cache hit replays the identical
                # floats, keeping the roulette bit-exact.
                low = min(priorities)
                span = max(priorities) - low
                floor = 0.1 + 0.05 * span
                weights = [p - low + floor for p in priorities]
                self._weights_entries += 1
                if self._weights_entries > WEIGHTS_CACHE_CAP:
                    self._evict_weights()
                cache[index] = weights
            chosen = roulette_select(rng, indices, weights)
        mask, vals, out = rows[chosen]
        values = self._values
        fanins = self._fanins[slot]
        committed: list[int] = []
        for i, f in enumerate(fanins):
            if not (mask >> i) & 1:
                continue
            lit = (vals >> i) & 1
            current = values[f]
            if current >= 0:
                if current != lit:
                    # Duplicated fanins: one driver bound to opposite
                    # values by the chosen row.
                    return True, committed
                continue
            self._set(f, lit)
            committed.append(f)
        if values[slot] < 0:
            self._set(slot, out)
            committed.append(slot)
        return False, committed


class CompiledSimGenGenerator(SimGenGenerator):
    """SimGen (AI/SI + RD/DC/MFFC) running on the compiled kernel.

    A drop-in for :class:`SimGenGenerator`: same constructor, same
    ``generate`` loop, same RNG order, bit-identical vectors and reports.
    The reference engines are still constructed — they are the oracle the
    property suite compares against, and their stats dicts are shared with
    the kernel so the metrics registry sees one stream per strategy.
    """

    backend = "compiled"

    def __init__(
        self,
        network: Network,
        seed: int = 0,
        implication_strategy: ImplicationStrategy = ImplicationStrategy.ADVANCED,
        decision_strategy: DecisionStrategy = DecisionStrategy.DC_MFFC,
        vectors_per_iteration: int = 4,
        max_targets: int = 8,
        outgold_strategy: OutgoldStrategy = alternating_outgold,
        alpha: float = DEFAULT_ALPHA,
        beta: float = DEFAULT_BETA,
    ):
        super().__init__(
            network,
            seed,
            implication_strategy,
            decision_strategy,
            vectors_per_iteration,
            max_targets,
            outgold_strategy,
            alpha,
            beta,
        )
        self.kernel = CompiledSimGenKernel(
            network,
            implication_strategy,
            decision_strategy,
            alpha,
            beta,
            mffc=self.decision._mffc,
            impl_stats=self.implication.stats,
            dec_stats=self.decision.stats,
        )
        # One-vector verification through the tape-compiled simulator:
        # values are bit-identical to the reference Simulator (cross-backend
        # suite), only faster.
        self._verifier = CompiledSimulator(network)
        #: target uid -> (cone PI slots, cone membership bytearray).
        self._compiled_cones: dict[int, tuple[tuple[int, ...], bytearray]] = {}

    def _cone_slots(self, target: int) -> tuple[tuple[int, ...], bytearray]:
        cached = self._compiled_cones.get(target)
        if cached is None:
            list_dfs, cone_pis = self._cone_of(target)
            kernel = self.kernel
            slot_of = kernel._slot_of
            in_cone = bytearray(len(kernel._uids))
            for uid in list_dfs:
                in_cone[slot_of[uid]] = 1
            cached = (tuple(slot_of[uid] for uid in cone_pis), in_cone)
            self._compiled_cones[target] = cached
        return cached

    def generate_for_targets(
        self, outgold: Mapping[int, int]
    ) -> GenerationReport:
        """Algorithm 1 (getInputVectors) over the compiled kernel."""
        kernel = self.kernel
        kernel.reset()
        report = GenerationReport(vector=None)
        for target in self._order_targets(outgold):
            self._process_target_compiled(target, outgold[target], report)
        # The kernel exposes the reference Assignment read surface
        # (value / pi_values), so the inherited finalizer applies verbatim.
        return self._finalize(kernel, outgold, report)

    def _process_target_compiled(
        self, target: int, gold: int, report: GenerationReport
    ) -> None:
        kernel = self.kernel
        marker = kernel.checkpoint()  # line 4: initVals
        cone_pi_slots, in_cone = self._cone_slots(target)  # line 6
        try:
            fresh = kernel.assign_uid(target, gold)  # line 5
        except KernelConflict:
            report.conflicts += 1
            return
        if not fresh and kernel.pis_set(cone_pi_slots):
            return  # already consistent and fully propagated
        exhausted: set[int] = set()
        seeds = [kernel._slot_of[target]]  # line 7: candidateNode = target
        rng = self.rng
        while not kernel.pis_set(cone_pi_slots):  # line 8
            conflict, assigned = kernel.propagate(seeds)  # line 9
            report.implications += assigned
            if conflict:  # lines 10-13
                kernel.revert(marker)
                report.conflicts += 1
                return
            if kernel.pis_set(cone_pi_slots):
                break
            candidate = self._pick_candidate_compiled(in_cone, exhausted)
            if candidate is None:
                # Remaining unset cone PIs are unconstrained by the target;
                # they get randomized at simulation time.
                break
            conflict, committed = kernel.decide(candidate, rng)  # line 16
            if conflict:
                kernel.revert(marker)
                report.conflicts += 1
                return
            if not committed:
                exhausted.add(candidate)
                seeds = []
                continue
            report.decisions += 1
            seeds = committed

    def _pick_candidate_compiled(
        self, in_cone: bytearray, exhausted: set[int]
    ) -> Optional[int]:
        """Line 15: latest-updated cone gate still needing a decision.

        ``state & full_bits != full_bits`` iff some fanin is unassigned;
        PIs and constants have both zero, so the same test skips them.
        """
        kernel = self.kernel
        state = kernel._state
        full_bits = kernel._full_bits
        for slot in reversed(kernel._trail):
            if in_cone[slot]:
                full = full_bits[slot]
                if state[slot] & full != full and slot not in exhausted:
                    return slot
        return None


def adapt_backend(generator, backend: str):
    """Swap a SimGen-family generator to the requested backend.

    Non-SimGen generators (RandS, RevS, hybrids, ``None``) pass through
    untouched.  The twin inherits the original's RNG object, rotation
    offset, and report list, so adapting mid-stream keeps the consumption
    order intact; trajectories are bit-identical either way.
    """
    if backend not in GENERATOR_BACKENDS:
        raise GenerationError(
            f"unknown simgen backend {backend!r} "
            "(use 'batch', 'compiled', or 'reference')"
        )
    if generator is None or not isinstance(generator, SimGenGenerator):
        return generator
    if generator.backend == backend:
        return generator
    if backend == "batch":
        from repro.core.batch import BatchSimGenGenerator

        cls = BatchSimGenGenerator
    elif backend == "compiled":
        cls = CompiledSimGenGenerator
    else:
        cls = SimGenGenerator
    twin = cls(
        generator.network,
        seed=0,
        implication_strategy=generator.implication.strategy,
        decision_strategy=generator.decision.strategy,
        vectors_per_iteration=generator.vectors_per_iteration,
        max_targets=generator.max_targets,
        outgold_strategy=generator.outgold_strategy,
        alpha=generator.decision.alpha,
        beta=generator.decision.beta,
    )
    twin.rng = generator.rng
    twin.decision.rng = generator.rng
    twin._rotation = generator._rotation
    twin.reports = generator.reports
    return twin
