"""Equivalence-pair checking against the SAT solver.

Two modes:

* **Incremental** (default): one CDCL solver holds the Tseitin encoding of
  every cone touched so far; each pair query adds miter clauses guarded by
  a fresh selector literal and solves under that assumption.  Learnt
  clauses persist across queries — the trick that makes SAT sweeping
  practical (and what MiniSat-inside-ABC does).
* **Fresh**: a new solver and cone encoding per query; slower but simpler,
  kept for cross-checking the incremental path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.network.network import Network
from repro.sat.solver import CdclSolver, SatResult
from repro.sat.tseitin import TseitinEncoder, pair_miter
from repro.simulation.patterns import InputVector


@dataclass(slots=True)
class CheckerStats:
    """Counters a sweep reports from its SAT phase."""

    calls: int = 0
    sat_time: float = 0.0
    proven: int = 0
    disproven: int = 0
    unknown: int = 0


class PairChecker:
    """Answers "are these two nodes equivalent?" queries."""

    def __init__(
        self,
        network: Network,
        conflict_limit: Optional[int] = 20000,
        incremental: bool = True,
    ):
        self.network = network
        self.conflict_limit = conflict_limit
        self.incremental = incremental
        self.stats = CheckerStats()
        if incremental:
            self._solver = CdclSolver()
            self._encoder = TseitinEncoder(network)
            self._clauses_loaded = 0

    # ------------------------------------------------------------------
    def check(
        self, node_a: int, node_b: int, complement: bool = False
    ) -> tuple[SatResult, Optional[InputVector]]:
        """One equivalence query.

        Returns ``(UNSAT, None)`` when the nodes are proven equivalent
        (or complement-equivalent when ``complement``), ``(SAT, vector)``
        with a distinguishing input vector otherwise, or
        ``(UNKNOWN, None)`` at the conflict budget.
        """
        start = time.perf_counter()
        if self.incremental:
            result, vector = self._check_incremental(node_a, node_b, complement)
        else:
            result, vector = self._check_fresh(node_a, node_b, complement)
        self.stats.calls += 1
        self.stats.sat_time += time.perf_counter() - start
        if result is SatResult.UNSAT:
            self.stats.proven += 1
        elif result is SatResult.SAT:
            self.stats.disproven += 1
        else:
            self.stats.unknown += 1
        return result, vector

    # ------------------------------------------------------------------
    def _check_fresh(
        self, node_a: int, node_b: int, complement: bool
    ) -> tuple[SatResult, Optional[InputVector]]:
        cnf, encoder = pair_miter(self.network, node_a, node_b, complement)
        solver = CdclSolver()
        solver.add_cnf(cnf)
        result = solver.solve(conflict_limit=self.conflict_limit)
        if result is SatResult.SAT:
            return result, encoder.model_to_vector(solver.model())
        return result, None

    def _check_incremental(
        self, node_a: int, node_b: int, complement: bool
    ) -> tuple[SatResult, Optional[InputVector]]:
        var_a = self._encoder.encode_cone(node_a)
        var_b = self._encoder.encode_cone(node_b)
        # Ship newly produced Tseitin clauses to the solver.
        clauses = self._encoder.cnf.clauses
        while self._clauses_loaded < len(clauses):
            self._solver.add_clause(clauses[self._clauses_loaded])
            self._clauses_loaded += 1
        # Allocate the selector from the shared CNF so later cone encodings
        # never reuse its index (the solver sizes itself from the clauses).
        selector = self._encoder.cnf.new_var()
        if complement:
            # Under the selector, assert the nodes are EQUAL (SAT would
            # refute the complement-equivalence candidate).
            self._solver.add_clause([-selector, var_a, -var_b])
            self._solver.add_clause([-selector, -var_a, var_b])
        else:
            self._solver.add_clause([-selector, var_a, var_b])
            self._solver.add_clause([-selector, -var_a, -var_b])
        result = self._solver.solve(
            assumptions=[selector], conflict_limit=self.conflict_limit
        )
        vector = None
        if result is SatResult.SAT:
            vector = self._encoder.model_to_vector(self._solver.model())
        # Retire the selector so this miter never constrains later queries.
        self._solver.add_clause([-selector])
        return result, vector
