"""Equivalence classes: refinement, cost (Eq. 5), phases, bookkeeping."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SweepError
from repro.network import NetworkBuilder
from repro.sweep import EquivalenceClasses


def toy_network(num_pis=2, num_gates=6):
    builder = NetworkBuilder()
    pis = builder.pis(num_pis)
    prev = pis[0]
    nodes = []
    for i in range(num_gates):
        prev = builder.and_(prev, pis[i % num_pis])
        nodes.append(prev)
    builder.po(prev)
    return builder.build(), nodes


class TestConstruction:
    def test_default_members_are_gates(self):
        net, nodes = toy_network()
        classes = EquivalenceClasses(net)
        assert classes.members() == sorted(nodes)
        assert classes.num_classes == 1

    def test_include_pis(self):
        net, nodes = toy_network()
        classes = EquivalenceClasses(net, include_pis=True)
        assert len(classes.members()) == len(nodes) + 2

    def test_explicit_members(self):
        net, nodes = toy_network()
        classes = EquivalenceClasses(net, members=nodes[:3])
        assert classes.members() == sorted(nodes[:3])

    def test_unknown_member_rejected(self):
        net, _ = toy_network()
        with pytest.raises(Exception):
            EquivalenceClasses(net, members=[999])


class TestRefinement:
    def test_split_by_signature(self):
        net, nodes = toy_network(num_gates=4)
        classes = EquivalenceClasses(net, members=nodes)
        signatures = {nodes[0]: 0b00, nodes[1]: 0b00, nodes[2]: 0b01, nodes[3]: 0b11}
        splits = classes.refine(signatures, width=2)
        assert splits == 2
        assert classes.same_class(nodes[0], nodes[1])
        assert not classes.same_class(nodes[0], nodes[2])
        assert not classes.same_class(nodes[2], nodes[3])

    def test_refine_is_incremental(self):
        net, nodes = toy_network(num_gates=4)
        classes = EquivalenceClasses(net, members=nodes)
        classes.refine({n: 0 for n in nodes}, width=1)
        assert classes.num_classes == 1
        classes.refine(
            {nodes[0]: 1, nodes[1]: 1, nodes[2]: 0, nodes[3]: 0}, width=1
        )
        assert classes.num_classes == 2

    def test_refine_masks_to_width(self):
        net, nodes = toy_network(num_gates=2)
        classes = EquivalenceClasses(net, members=nodes)
        # Signatures differ only above the declared width: no split.
        classes.refine({nodes[0]: 0b10, nodes[1]: 0b00}, width=1)
        assert classes.same_class(nodes[0], nodes[1])

    def test_missing_signature_rejected(self):
        net, nodes = toy_network(num_gates=3)
        classes = EquivalenceClasses(net, members=nodes)
        with pytest.raises(SweepError):
            classes.refine({nodes[0]: 0}, width=1)

    def test_zero_width_noop(self):
        net, nodes = toy_network(num_gates=3)
        classes = EquivalenceClasses(net, members=nodes)
        assert classes.refine({}, width=0) == 0


class TestCost:
    def test_equation_5(self):
        net, nodes = toy_network(num_gates=6)
        classes = EquivalenceClasses(net, members=nodes)
        assert classes.cost() == 5  # one class of six
        classes.refine(
            {n: (0 if i < 3 else 1) for i, n in enumerate(nodes)}, width=1
        )
        assert classes.cost() == 4  # 2 + 2

    def test_all_singletons_cost_zero(self):
        net, nodes = toy_network(num_gates=4)
        classes = EquivalenceClasses(net, members=nodes)
        classes.refine({n: i for i, n in enumerate(nodes)}, width=2)
        assert classes.cost() == 0
        assert classes.splittable() == []


class TestComplementMatching:
    def test_complement_signatures_share_class(self):
        net, nodes = toy_network(num_gates=2)
        classes = EquivalenceClasses(net, members=nodes, match_complements=True)
        classes.refine({nodes[0]: 0b0101, nodes[1]: 0b1010}, width=4)
        assert classes.same_class(nodes[0], nodes[1])
        assert classes.phase(nodes[0]) != classes.phase(nodes[1])

    def test_plain_mode_splits_complements(self):
        net, nodes = toy_network(num_gates=2)
        classes = EquivalenceClasses(net, members=nodes)
        classes.refine({nodes[0]: 0b0101, nodes[1]: 0b1010}, width=4)
        assert not classes.same_class(nodes[0], nodes[1])

    def test_non_complement_still_split(self):
        net, nodes = toy_network(num_gates=2)
        classes = EquivalenceClasses(net, members=nodes, match_complements=True)
        classes.refine({nodes[0]: 0b0101, nodes[1]: 0b0011}, width=4)
        assert not classes.same_class(nodes[0], nodes[1])


class TestBookkeeping:
    def test_remove_member(self):
        net, nodes = toy_network(num_gates=3)
        classes = EquivalenceClasses(net, members=nodes)
        classes.remove_member(nodes[0])
        assert nodes[0] not in classes.members()
        assert classes.cost() == 1

    def test_isolate(self):
        net, nodes = toy_network(num_gates=3)
        classes = EquivalenceClasses(net, members=nodes)
        classes.isolate(nodes[1])
        assert not classes.same_class(nodes[0], nodes[1])
        assert classes.cost() == 1

    def test_isolate_singleton_noop(self):
        net, nodes = toy_network(num_gates=2)
        classes = EquivalenceClasses(net, members=nodes)
        classes.refine({nodes[0]: 0, nodes[1]: 1}, width=1)
        classes.isolate(nodes[0])
        assert classes.num_classes == 2

    def test_splittable_sorted_largest_first(self):
        net, nodes = toy_network(num_gates=6)
        classes = EquivalenceClasses(net, members=nodes)
        sig = {n: (0 if i < 4 else 1) for i, n in enumerate(nodes)}
        classes.refine(sig, width=1)
        sizes = [len(c) for c in classes.splittable()]
        assert sizes == sorted(sizes, reverse=True)


class TestPartitionInvariant:
    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_refinement_preserves_partition(self, data):
        net, nodes = toy_network(num_gates=8)
        classes = EquivalenceClasses(net, members=nodes)
        for _ in range(data.draw(st.integers(1, 4))):
            signatures = {
                n: data.draw(st.integers(0, 7), label=f"sig{n}") for n in nodes
            }
            classes.refine(signatures, width=3)
            # partition invariant: every member in exactly one class
            seen = [uid for cls in classes.all_classes() for uid in cls]
            assert sorted(seen) == sorted(nodes)
            # same signature => same class within one refinement... holds
            # only per-step; check the converse: different sig => different
            # class after this refinement.
            for a in nodes:
                for b in nodes:
                    if (
                        classes.same_class(a, b)
                        and a != b
                    ):
                        assert signatures[a] == signatures[b]


class TestWorkQueue:
    """best_splittable() must always agree with splittable()[0]."""

    def test_initial_and_resolved(self):
        net, nodes = toy_network()
        classes = EquivalenceClasses(net, members=nodes)
        assert classes.best_splittable() == classes.splittable()[0]
        for uid in nodes[1:]:
            classes.remove_member(uid)
        assert classes.best_splittable() is None
        assert classes.splittable() == []

    def test_agrees_after_refine_isolate_remove(self):
        rng = random.Random(5)
        net, nodes = toy_network(num_gates=12)
        classes = EquivalenceClasses(net, members=nodes)
        for step in range(60):
            op = rng.randrange(3)
            tracked = classes.members()
            if not tracked:
                break
            if op == 0:
                sig = {n: rng.getrandbits(2) for n in tracked}
                classes.refine(sig, width=2)
            elif op == 1:
                classes.isolate(rng.choice(tracked))
            else:
                classes.remove_member(rng.choice(tracked))
            splittable = classes.splittable()
            expected = splittable[0] if splittable else None
            assert classes.best_splittable() == expected, step

    def test_splittable_members(self):
        net, nodes = toy_network(num_gates=6)
        classes = EquivalenceClasses(net, members=nodes)
        assert sorted(classes.splittable_members()) == sorted(nodes)
        sig = {n: (1 if n == nodes[0] else 0) for n in nodes}
        classes.refine(sig, width=1)
        assert sorted(classes.splittable_members()) == sorted(nodes[1:])

    def test_tracked(self):
        net, nodes = toy_network()
        classes = EquivalenceClasses(net, members=nodes)
        assert classes.tracked(nodes[0])
        classes.remove_member(nodes[0])
        assert not classes.tracked(nodes[0])

    def test_cost_matches_sum_formula_under_mutations(self):
        rng = random.Random(9)
        net, nodes = toy_network(num_gates=10)
        classes = EquivalenceClasses(net, members=nodes)
        for _ in range(40):
            if rng.random() < 0.5 and classes.members():
                classes.isolate(rng.choice(classes.members()))
            elif classes.members():
                sig = {n: rng.getrandbits(1) for n in classes.members()}
                classes.refine(sig, width=1)
            assert classes.cost() == sum(
                len(c) - 1 for c in classes.all_classes()
            )
