"""Exception hierarchy for the repro (SimGen) library.

Every error raised by the library derives from :class:`ReproError`, so a
downstream user can catch one type to guard a whole flow.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class LogicError(ReproError):
    """Invalid truth-table / cube operation (bad arity, bad literal, ...)."""


class NetworkError(ReproError):
    """Structural problem in a Boolean network (cycle, dangling fanin, ...)."""


class ParseError(ReproError):
    """Malformed input file (BLIF / BENCH)."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class SimulationError(ReproError):
    """Inconsistent simulation request (width mismatch, unknown node, ...)."""


class TransientSimulationError(SimulationError):
    """A simulation failure that may succeed on retry (injected or I/O).

    The sweeping engine retries these a bounded number of times before
    degrading; any other :class:`SimulationError` propagates as a bug.
    """


class SatError(ReproError):
    """Malformed CNF or solver misuse."""


class TransientSolverError(SatError):
    """A solver failure that may succeed with a fresh solver instance.

    Raised by fault-injection wrappers (and reserved for external-solver
    crashes); :class:`~repro.sweep.checker.PairChecker` retries these with
    a rebuilt solver before answering UNKNOWN.
    """


class BudgetExpired(ReproError):
    """A resource budget (deadline / conflicts / SAT calls) ran out.

    Engines catch this internally and degrade gracefully; it escapes to the
    caller only through explicit :meth:`~repro.runtime.budget.Budget.check`
    calls.
    """


class SweepError(ReproError):
    """Inconsistent sweeping state."""


class JournalError(ReproError):
    """Unusable verdict journal (mid-file corruption, header mismatch,
    or an existing journal opened without ``--resume``).

    A *torn tail* — a partial final record from a crash mid-append — is
    **not** an error: the loader truncates it and continues.
    """


class MappingError(ReproError):
    """LUT mapping failure (infeasible cut size, unmapped node, ...)."""


class GenerationError(ReproError):
    """Pattern-generation failure that indicates misuse (not a mere conflict)."""
