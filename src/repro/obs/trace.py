"""Structured JSONL tracing (the observability substrate of every flow).

A :class:`Tracer` writes one JSON object per line to a sink (a path, an
open file, or an in-memory list).  The stream starts with a ``header``
record carrying the schema version, followed by:

* ``begin`` / ``end`` — a *span*: a timed window with a name and
  attributes (phases, waves).  Every ``begin`` must be matched by an
  ``end``; the validator (:mod:`repro.obs.schema`) flags unclosed spans,
  which is how "timer closed on every exit path" is enforced in CI.
* ``event`` — a point record, optionally with a ``dur`` for atomic timed
  work whose window is owned elsewhere (e.g. one SAT pair query timed by
  its :class:`~repro.sweep.checker.PairChecker`).
* ``counters`` — a dump of a :class:`~repro.obs.metrics.MetricsRegistry`.

Determinism contract
--------------------

Engine instrumentation only attaches *trajectory* attributes (phase, wave,
class representative, pair, verdict, conflict count, cost) plus timing
fields.  Timing fields follow a naming convention — ``t``, ``dur``, or a
``*_s`` suffix — so :func:`deterministic_projection` can strip them; what
remains must be bit-identical across runs and (on the pooled path) across
worker counts.  The golden-trace suite pins this.

Overhead
--------

Disabled tracing costs one attribute read per instrumentation site:
engines hold :data:`NULL_TRACER` (``enabled`` is ``False``) and guard
per-pair records with ``if tracer.enabled``.  Phase-level spans go through
no-op methods.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Callable, IO, Optional, Union

from repro.obs.schema import TRACE_SCHEMA_VERSION

#: Top-level keys holding non-deterministic wall-clock data.  Any key named
#: here — or ending in ``_s`` — is stripped by the deterministic projection.
VOLATILE_KEYS = frozenset({"t", "dur"})

#: Record names excluded from the deterministic projection wholesale:
#: pool lifecycle depends on the worker count and on chaos (respawns).
VOLATILE_NAME_PREFIXES = ("pool.",)


def _is_volatile_key(key: str) -> bool:
    return key in VOLATILE_KEYS or key.endswith("_s")


def _strip_volatile(value):
    if isinstance(value, dict):
        return {
            k: _strip_volatile(v)
            for k, v in value.items()
            if not _is_volatile_key(k)
        }
    if isinstance(value, list):
        return [_strip_volatile(v) for v in value]
    return value


def deterministic_projection(records) -> list[dict]:
    """The schedule-invariant view of a trace.

    Drops the header (it carries wall timestamps and invocation metadata),
    every ``pool.*`` record (worker lifecycle is jobs-dependent), and all
    timing fields at any nesting depth.  Two runs of the same seeded flow
    must produce equal projections; the pooled SAT path must also be
    invariant across worker counts (see ``tests/obs/test_golden_trace.py``).
    """
    projected = []
    for record in records:
        if record.get("type") == "header":
            continue
        name = record.get("name", "")
        if isinstance(name, str) and name.startswith(VOLATILE_NAME_PREFIXES):
            continue
        projected.append(_strip_volatile(record))
    return projected


class _SpanHandle:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_span_id")

    def __init__(self, tracer: "Tracer", span_id: int):
        self._tracer = tracer
        self._span_id = span_id

    @property
    def span_id(self) -> int:
        return self._span_id

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        # Close on every exit path — normal, error, interrupt — so the
        # validator's unclosed-span check holds even for aborted flows.
        self._tracer.end(self._span_id)


class Tracer:
    """Writes structured trace records to a JSONL sink.

    Args:
        sink: A file path (the tracer owns and closes the file), an open
            text file (caller owns it), or a list (records are appended as
            dicts — handy for tests and in-process analysis).
        meta: Free-form invocation metadata stored in the header record
            (command line, seed, jobs); excluded from the deterministic
            projection, so jobs-dependent data belongs here.
        clock: Monotonic clock used for ``t``/``dur`` fields.
    """

    enabled = True

    def __init__(
        self,
        sink: Union[str, Path, IO[str], list],
        meta: Optional[dict] = None,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self._clock = clock
        self._epoch = clock()
        self._seq = 0
        self._next_span = 0
        #: span id -> (name, start time) for spans still open.
        self._open: dict[int, tuple[str, float]] = {}
        self._records: Optional[list] = None
        self._file: Optional[IO[str]] = None
        self._owns_file = False
        if isinstance(sink, list):
            self._records = sink
        elif isinstance(sink, (str, Path)):
            self._file = open(sink, "w", encoding="utf-8")
            self._owns_file = True
        else:
            self._file = sink
        self._emit(
            {
                "type": "header",
                "schema": TRACE_SCHEMA_VERSION,
                "created_at": time.time(),
                "meta": dict(meta or {}),
            }
        )

    # ------------------------------------------------------------------
    def _now(self) -> float:
        return self._clock() - self._epoch

    def _emit(self, record: dict) -> None:
        record["i"] = self._seq
        self._seq += 1
        if self._records is not None:
            self._records.append(record)
        else:
            self._file.write(json.dumps(record, separators=(",", ":")) + "\n")

    # ------------------------------------------------------------------
    def begin(self, name: str, **attrs) -> int:
        """Open a span; returns its id for :meth:`end`."""
        span_id = self._next_span
        self._next_span += 1
        t = self._now()
        self._open[span_id] = (name, t)
        record = {"type": "begin", "name": name, "id": span_id, "t": t}
        record.update(attrs)
        self._emit(record)
        return span_id

    def end(self, span_id: int, **attrs) -> None:
        """Close a span; computes ``dur`` from the matching ``begin``."""
        opened = self._open.pop(span_id, None)
        t = self._now()
        record = {
            "type": "end",
            "id": span_id,
            "t": t,
            "dur": max(0.0, t - opened[1]) if opened else 0.0,
        }
        if opened:
            record["name"] = opened[0]
        record.update(attrs)
        self._emit(record)

    def span(self, name: str, **attrs) -> _SpanHandle:
        """``with tracer.span("phase", phase="sat"): ...`` — closes on any exit."""
        return _SpanHandle(self, self.begin(name, **attrs))

    def event(self, name: str, **attrs) -> None:
        """A point record; pass ``dur=`` for externally-timed atomic work."""
        record = {"type": "event", "name": name, "t": self._now()}
        record.update(attrs)
        self._emit(record)

    def counters(self, values: dict) -> None:
        """Dump a metrics-registry snapshot into the trace."""
        self._emit({"type": "counters", "values": values})

    # ------------------------------------------------------------------
    @property
    def open_spans(self) -> int:
        """Spans begun but not yet ended (should be 0 after a clean run)."""
        return len(self._open)

    def close(self) -> None:
        """Flush (and fsync) the sink; close it when the tracer owns it."""
        if self._file is not None:
            self._file.flush()
            try:
                os.fsync(self._file.fileno())
            except (OSError, ValueError, AttributeError):
                pass  # in-memory sinks (StringIO) have no file descriptor
            if self._owns_file:
                self._file.close()
                self._file = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class NullTracer:
    """No-op tracer: the default wired into every engine.

    All methods are empty and ``enabled`` is ``False`` so hot loops can
    skip attribute packing entirely; a shared singleton
    (:data:`NULL_TRACER`) keeps the disabled path allocation-free.
    """

    enabled = False
    open_spans = 0

    def begin(self, name: str, **attrs) -> int:
        return -1

    def end(self, span_id: int, **attrs) -> None:
        pass

    def span(self, name: str, **attrs) -> "NullTracer":
        return self

    def event(self, name: str, **attrs) -> None:
        pass

    def counters(self, values: dict) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullTracer":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


#: Shared no-op tracer; engines default to this when no trace was requested.
NULL_TRACER = NullTracer()
