"""Arithmetic benchmark generators (alu4, dalu, square, sin, log2, cordic...).

Each function builds a combinational datapath whose character matches the
named benchmark family: ALUs mux several word operations under an opcode,
``square`` multiplies a word by itself, ``log2``/``sin``/``cordic`` are
shift-add iterative approximations (unrolled), matching the EPFL
arithmetic suite's flavor at Python-tractable sizes.
"""

from __future__ import annotations

from repro.network.build import NetworkBuilder
from repro.network.network import Network


def alu(name: str, width: int = 4, seed: int = 0) -> Network:
    """A small ALU: add / sub / and / or / xor / slt selected by opcode."""
    builder = NetworkBuilder(name)
    a = builder.pis(width, "a")
    b = builder.pis(width, "b")
    op = builder.pis(3, "op")

    add_bits, add_carry = builder.ripple_adder(a, b)
    sub_bits, _ = builder.subtractor(a, b)
    and_bits = [builder.and_(x, y) for x, y in zip(a, b)]
    or_bits = [builder.or_(x, y) for x, y in zip(a, b)]
    xor_bits = [builder.xor_(x, y) for x, y in zip(a, b)]
    slt = builder.less_than(a, b)
    zero = builder.const(False)
    slt_bits = [slt] + [zero] * (width - 1)

    choices = [add_bits, sub_bits, and_bits, or_bits, xor_bits, slt_bits]
    # 3-level mux tree indexed by opcode bits.
    while len(choices) < 8:
        choices.append(add_bits)
    for bit in range(width):
        level0 = [
            builder.mux_(choices[2 * j][bit], choices[2 * j + 1][bit], op[0])
            for j in range(4)
        ]
        level1 = [
            builder.mux_(level0[2 * j], level0[2 * j + 1], op[1])
            for j in range(2)
        ]
        builder.po(builder.mux_(level1[0], level1[1], op[2]), f"r{bit}")
    builder.po(add_carry, "cout")
    return builder.build()


def square(name: str, width: int = 5, seed: int = 0) -> Network:
    """Squarer: the EPFL ``square`` benchmark's shape (a * a)."""
    builder = NetworkBuilder(name)
    a = builder.pis(width, "a")
    product = builder.multiplier(a, a)
    for j, bit in enumerate(product):
        builder.po(bit, f"p{j}")
    return builder.build()


def multiplier(name: str, width: int = 4, seed: int = 0) -> Network:
    """Array multiplier of two words."""
    builder = NetworkBuilder(name)
    a = builder.pis(width, "a")
    b = builder.pis(width, "b")
    product = builder.multiplier(a, b)
    for j, bit in enumerate(product):
        builder.po(bit, f"p{j}")
    return builder.build()


def log2_approx(name: str, width: int = 8, seed: int = 0) -> Network:
    """Leading-one position + fractional bits (integer log2 approximation)."""
    builder = NetworkBuilder(name)
    a = builder.pis(width, "a")
    # found[i]: some bit above position i (inclusive) is set.
    found = a[width - 1]
    position_bits = max(1, (width - 1).bit_length())
    position = [builder.const(False) for _ in range(position_bits)]
    for i in reversed(range(width)):
        if i < width - 1:
            found = builder.or_(found, a[i])
        # If a[i] is the leading one, encode i into position.
        higher = builder.reduce_tree(
            "or", [a[j] for j in range(i + 1, width)]
        ) if i + 1 < width else builder.const(False)
        is_leading = builder.and_(a[i], builder.not_(higher))
        for bit in range(position_bits):
            if (i >> bit) & 1:
                position[bit] = builder.or_(position[bit], is_leading)
    for bit, node in enumerate(position):
        builder.po(node, f"log{bit}")
    builder.po(found, "nonzero")
    # Fractional part: the two bits right below the leading one.
    for frac in range(2):
        terms = []
        for i in range(frac + 1, width):
            higher = (
                builder.reduce_tree("or", [a[j] for j in range(i + 1, width)])
                if i + 1 < width
                else builder.const(False)
            )
            is_leading = builder.and_(a[i], builder.not_(higher))
            terms.append(builder.and_(is_leading, a[i - frac - 1]))
        builder.po(builder.reduce_tree("or", terms), f"frac{frac}")
    return builder.build()


def cordic(name: str, width: int = 6, iterations: int = 3, seed: int = 0) -> Network:
    """Unrolled CORDIC-style shift-add rotations.

    Each iteration conditionally adds/subtracts a shifted copy of the other
    coordinate, the condition driven by an angle input bit — the shape of
    the VTR ``cordic`` benchmark, scaled down.
    """
    builder = NetworkBuilder(name)
    x = builder.pis(width, "x")
    y = builder.pis(width, "y")
    angle = builder.pis(iterations, "z")
    zero = builder.const(False)
    for step in range(iterations):
        shift = step + 1
        x_shift = [zero] * min(shift, width) + x[: max(0, width - shift)]
        y_shift = [zero] * min(shift, width) + y[: max(0, width - shift)]
        x_add, _ = builder.ripple_adder(x, y_shift)
        x_sub, _ = builder.subtractor(x, y_shift)
        y_add, _ = builder.ripple_adder(y, x_shift)
        y_sub, _ = builder.subtractor(y, x_shift)
        direction = angle[step]
        x = [builder.mux_(xa, xs, direction) for xa, xs in zip(x_add, x_sub)]
        y = [builder.mux_(ys, ya, direction) for ya, ys in zip(y_add, y_sub)]
    for j, bit in enumerate(x):
        builder.po(bit, f"xo{j}")
    for j, bit in enumerate(y):
        builder.po(bit, f"yo{j}")
    return builder.build()


def sin_approx(name: str, width: int = 6, seed: int = 0) -> Network:
    """Piecewise polynomial sine: squaring + scaled adds (EPFL ``sin`` shape)."""
    builder = NetworkBuilder(name)
    a = builder.pis(width, "a")
    zero = builder.const(False)
    # x^2 (truncated to width), then sin(x) ~ x - x^3/6 via shift-adds.
    sq_full = builder.multiplier(a, a)
    sq = sq_full[width:]  # keep the high half as the fixed-point square
    cube_full = builder.multiplier(sq, a)
    cube = cube_full[width:]
    # divide by ~8 (shift 3) + by ~32 correction to approximate /6
    cube_8 = [zero] * 0 + cube[3:] + [zero] * 3
    cube_32 = cube[5:] + [zero] * 5
    corr, _ = builder.ripple_adder(cube_8[:width], cube_32[:width])
    result, _ = builder.subtractor(a, corr)
    for j, bit in enumerate(result):
        builder.po(bit, f"s{j}")
    return builder.build()
