"""putontop stacking (§6.4's benchmark scaling)."""

import pytest

from repro.errors import NetworkError
from repro.network import NetworkBuilder, validate
from repro.simulation import Simulator
from repro.transforms import put_on_top
from tests.conftest import networks_equal, random_network


class TestStructure:
    def test_single_copy_is_plain_clone(self):
        net = random_network(seed=0)
        tower = put_on_top(net, 1)
        validate(tower)
        assert networks_equal(net, tower)

    def test_more_outputs_than_inputs_creates_spare_pos(self):
        builder = NetworkBuilder()
        a, b = builder.pis(2)
        builder.po(builder.and_(a, b))
        builder.po(builder.or_(a, b))
        builder.po(builder.xor_(a, b))
        net = builder.build()  # 2 PIs, 3 POs
        tower = put_on_top(net, 2)
        validate(tower)
        # copy 0 consumes 2 of its 3 outputs; 1 spare + 3 top outputs.
        assert len(tower.pos) == 4
        assert len(tower.pis) == 2

    def test_more_inputs_than_outputs_creates_new_pis(self):
        builder = NetworkBuilder()
        a, b, c = builder.pis(3)
        builder.po(builder.and_(builder.and_(a, b), c))
        net = builder.build()  # 3 PIs, 1 PO
        tower = put_on_top(net, 3)
        validate(tower)
        # each extra copy adds 2 fresh PIs
        assert len(tower.pis) == 3 + 2 + 2
        assert len(tower.pos) == 1

    def test_gate_count_scales_linearly(self):
        net = random_network(seed=1)
        tower = put_on_top(net, 4)
        assert tower.num_gates == 4 * net.num_gates

    def test_invalid_copies(self):
        net = random_network(seed=0)
        with pytest.raises(NetworkError):
            put_on_top(net, 0)


class TestSemantics:
    def test_two_copy_composition(self):
        """For a 1-PI/1-PO circuit the tower computes f(f(x))."""
        builder = NetworkBuilder()
        a = builder.pi()
        g = builder.not_(a)
        builder.po(g)
        net = builder.build()
        tower = put_on_top(net, 2)
        sim = Simulator(tower)
        for x in (0, 1):
            values = sim.run_vector({tower.pis[0]: x})
            assert values[tower.pos[0][1]] == x  # NOT(NOT x)

    def test_depth_grows(self):
        net = random_network(seed=2)
        tower = put_on_top(net, 3)
        assert tower.depth() > net.depth()
