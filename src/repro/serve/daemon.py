"""The sweep service: a long-lived daemon running jobs over a shared cache.

Two layers:

* :class:`SweepService` — the embeddable core.  A thread pool pulls jobs
  from an :class:`~repro.serve.admission.AdmissionQueue` (fair FIFO with
  aging, per-client pending budgets) and runs each one through the
  existing engines — :class:`~repro.sweep.engine.SweepEngine` for sweep
  jobs, :func:`~repro.sweep.cec.check_equivalence` for CEC jobs — with a
  :class:`~repro.serve.cache.CacheSession` plugged in as the run's
  verdict journal.  Every job therefore runs query-pure and replays any
  verdict the daemon has proven before (for this or any other client)
  whose cone signatures and configuration fingerprint match.

* :func:`build_server` / :func:`run_server` — a JSON-over-HTTP front end
  (stdlib ``ThreadingHTTPServer``; no new dependencies) exposing::

      POST /jobs            submit a job (netlist text + config)
      GET  /jobs/<id>       job status / result
      GET  /jobs/<id>/trace per-job ``repro.obs`` JSONL trace (supports
                            ``?offset=`` so clients can stream increments)
      GET  /stats           cache / admission / registry snapshot
      GET  /health          liveness probe
      POST /shutdown        graceful stop (drains running jobs)

Determinism contract: a job's result is byte-identical to the same
command-line run cold — cache hits replay through the same paths PR 7
proved byte-identical for ``--resume``, and execution shape (workers,
concurrency, cache state) never leaks into verdicts.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import traceback
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.core import factory, make_generator
from repro.errors import ReproError
from repro.io import bench_text, blif_text, parse_bench, parse_blif
from repro.obs import MetricsRegistry, Tracer
from repro.runtime.budget import Budget
from repro.runtime.journal import sweep_signature
from repro.serve.admission import AdmissionQueue, ClientBudget
from repro.serve.cache import VerdictCache
from repro.sweep import SweepConfig, SweepEngine, check_equivalence
from repro.sweep.reduce import reduce_network

#: Configuration fields a job request may set, with CLI-matching defaults
#: (a daemon job and the equivalent ``repro.tools`` invocation must
#: produce byte-identical results).
CONFIG_DEFAULTS = {
    "seed": 0,
    "iterations": 20,
    "patterns": 8,
    "strategy": "AI+DC+MFFC",
    "simgen_backend": "batch",
    "sat_backend": "compiled",
    "jobs": 1,
    "timeout": None,
    "escalate": False,
}

_FORMATS = {"bench": (parse_bench, bench_text), "blif": (parse_blif, blif_text)}


class Job:
    """One submitted job and its lifecycle state."""

    __slots__ = (
        "id",
        "client",
        "kind",
        "request",
        "status",
        "result",
        "error",
        "trace_path",
    )

    def __init__(self, job_id: str, client: str, kind: str, request: dict):
        self.id = job_id
        self.client = client
        self.kind = kind
        self.request = request
        self.status = "queued"
        self.result: Optional[dict] = None
        self.error: Optional[str] = None
        self.trace_path: Optional[str] = None

    def describe(self) -> dict:
        payload = {
            "id": self.id,
            "client": self.client,
            "kind": self.kind,
            "status": self.status,
        }
        if self.result is not None:
            payload["result"] = self.result
        if self.error is not None:
            payload["error"] = self.error
        payload["trace"] = self.trace_path is not None
        return payload


class SweepService:
    """Thread-pooled job runner over a shared verdict/artifact cache."""

    def __init__(
        self,
        workers: int = 2,
        cache: Optional[VerdictCache] = None,
        registry: Optional[MetricsRegistry] = None,
        spool_dir: Optional[str] = None,
        default_budget: Optional[ClientBudget] = None,
    ):
        if workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        self.cache = cache if cache is not None else VerdictCache()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.queue = AdmissionQueue(default_budget=default_budget)
        self._spool = spool_dir or tempfile.mkdtemp(prefix="repro-serve-")
        os.makedirs(self._spool, exist_ok=True)
        self._jobs: dict[str, Job] = {}
        self._lock = threading.Lock()
        self._seq = 0
        self._threads = [
            threading.Thread(
                target=self._worker_loop, name=f"serve-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        self._started = False
        self._stopping = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "SweepService":
        if not self._started:
            self._started = True
            for thread in self._threads:
                thread.start()
        return self

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting jobs; optionally drain running ones."""
        self._stopping = True
        self.queue.close()
        if wait:
            for thread in self._threads:
                if thread.is_alive():
                    thread.join(timeout=60)
        self.cache.close()

    def __enter__(self) -> "SweepService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Submission + queries
    # ------------------------------------------------------------------
    def submit(self, request: dict) -> dict:
        """Validate and enqueue a job; returns ``{"id": ...}`` or a
        rejection ``{"rejected": reason}`` (over-budget client, bad
        request, stopping daemon)."""
        kind = request.get("kind", "sweep")
        if kind not in ("sweep", "cec"):
            return {"rejected": f"unknown job kind {kind!r}"}
        fmt = request.get("format", "bench")
        if fmt not in _FORMATS:
            return {"rejected": f"unknown netlist format {fmt!r}"}
        if not isinstance(request.get("netlist"), str):
            return {"rejected": "request needs a 'netlist' text field"}
        if kind == "cec" and not isinstance(request.get("revised"), str):
            return {"rejected": "cec jobs need a 'revised' netlist field"}
        config = request.get("config") or {}
        unknown = set(config) - set(CONFIG_DEFAULTS)
        if unknown:
            return {
                "rejected": f"unknown config fields {sorted(unknown)!r}"
            }
        client = str(request.get("client", "anonymous"))
        with self._lock:
            job_id = f"j{self._seq:06d}"
            self._seq += 1
        job = Job(job_id, client, kind, request)
        if request.get("trace"):
            job.trace_path = os.path.join(
                self._spool, f"{job_id}.trace.jsonl"
            )
        with self._lock:
            self._jobs[job_id] = job
        if not self.queue.submit(client, job):
            job.status = "rejected"
            job.error = "client pending budget exhausted or daemon stopping"
            return {"rejected": job.error, "id": job_id}
        return {"id": job_id}

    def job(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def trace_bytes(self, job_id: str, offset: int = 0) -> Optional[bytes]:
        job = self.job(job_id)
        if job is None or job.trace_path is None:
            return None
        try:
            with open(job.trace_path, "rb") as handle:
                handle.seek(max(0, offset))
                return handle.read()
        except OSError:
            return b""

    def stats(self) -> dict:
        """Cache / admission / job-count snapshot (also folds cache
        deltas into the registry under ``cache.verdict.*``)."""
        from repro.core.compiled import transition_cache_info
        from repro.simulation.compiled import tape_cache_info

        with self._lock:
            counts: dict[str, int] = {}
            for job in self._jobs.values():
                counts[job.status] = counts.get(job.status, 0) + 1
        self.registry.inc_many("cache.verdict", self.cache.consume_stats())
        return {
            "jobs": counts,
            "queue_depth": self.queue.depth,
            "admission": self.queue.stats.as_dict(),
            "cache": {
                "verdict": self.cache.stats,
                "transition": transition_cache_info(),
                "tape": tape_cache_info(),
            },
            "registry": self.registry.as_dict(),
        }

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            job = self.queue.pop(timeout=0.5)
            if job is None:
                if self._stopping:
                    return
                continue
            job.status = "running"
            try:
                job.result = self._execute(job)
                job.status = "done"
            except ReproError as exc:
                job.error = str(exc)
                job.status = "failed"
            except Exception:  # pragma: no cover - defensive
                job.error = traceback.format_exc(limit=8)
                job.status = "failed"
            finally:
                self.queue.finish(job.client)

    def _job_config(self, job: Job, tracer, session) -> SweepConfig:
        options = dict(CONFIG_DEFAULTS)
        options.update(job.request.get("config") or {})
        timeout = options["timeout"]
        clamp = self.queue.budget_for(job.client).max_job_seconds
        if clamp is not None:
            timeout = clamp if timeout is None else min(timeout, clamp)
        return SweepConfig(
            seed=int(options["seed"]),
            iterations=int(options["iterations"]),
            random_width=int(options["patterns"]),
            budget=None if timeout is None else Budget(seconds=timeout),
            max_escalations=2 if options["escalate"] else 0,
            jobs=int(options["jobs"]),
            sat_backend=options["sat_backend"],
            tracer=tracer,
            journal=session,
        )

    def _execute(self, job: Job) -> dict:
        parse, render = _FORMATS[job.request.get("format", "bench")]
        options = dict(CONFIG_DEFAULTS)
        options.update(job.request.get("config") or {})
        tracer = None
        if job.trace_path is not None:
            tracer = Tracer(
                job.trace_path,
                meta={"job": job.id, "kind": job.kind, "client": job.client},
            )
        session = self.cache.session()
        try:
            if job.kind == "sweep":
                result = self._run_sweep(
                    job, parse, render, options, tracer, session
                )
            else:
                result = self._run_cec(job, parse, options, tracer, session)
        finally:
            if tracer is not None:
                tracer.close()
        result["cache"] = {
            "hits": session.stats["replayed_verdicts"],
            "misses": session.stats["misses"],
            "appends": session.stats["appends"],
        }
        self.registry.inc_many("cache.verdict", self.cache.consume_stats())
        return result

    def _run_sweep(self, job, parse, render, options, tracer, session):
        network = parse(job.request["netlist"])
        generator = make_generator(
            options["strategy"],
            network,
            seed=int(options["seed"]),
            simgen_backend=options["simgen_backend"],
        )
        config = self._job_config(job, tracer, session)
        engine = SweepEngine(network, generator, config)
        result = engine.run()
        self._merge_registry(engine.registry)
        reduced, stats = reduce_network(network, result.equivalences)
        metrics = result.metrics
        return {
            "kind": "sweep",
            "netlist": render(reduced),
            "format": job.request.get("format", "bench"),
            "gates_before": stats.gates_before,
            "gates_after": stats.gates_after,
            "merged": stats.merged,
            "sweep_signature": sweep_signature(network, result),
            "metrics": {
                "sat_calls": metrics.sat_calls,
                "proven": metrics.proven,
                "disproven": metrics.disproven,
                "unknown": metrics.unknown,
                "sat_time": metrics.sat_time,
                "sim_time": metrics.sim_time,
                "simgen_time": metrics.simgen_time,
                "deadline_expired": metrics.deadline_expired,
            },
        }

    def _run_cec(self, job, parse, options, tracer, session):
        golden = parse(job.request["netlist"])
        revised = parse(job.request["revised"])
        config = self._job_config(job, tracer, session)
        result = check_equivalence(
            golden,
            revised,
            generator_factory=factory(
                options["strategy"], simgen_backend=options["simgen_backend"]
            ),
            config=config,
        )
        metrics = result.metrics
        counterexample = None
        if result.counterexample is not None:
            counterexample = sorted(
                (golden.node(pi).label(), int(bit))
                for pi, bit in result.counterexample.values.items()
            )
        return {
            "kind": "cec",
            "verdict": result.verdict,
            "equivalent": result.equivalent,
            "conclusive": result.conclusive,
            "outputs": dict(sorted(result.outputs.items())),
            "counterexample": counterexample,
            "metrics": {
                "sat_calls": metrics.sat_calls,
                "sat_time": metrics.sat_time,
                "deadline_expired": metrics.deadline_expired,
            },
        }

    def _merge_registry(self, job_registry: MetricsRegistry) -> None:
        with self._lock:
            self.registry.merge(job_registry)


# ----------------------------------------------------------------------
# HTTP front end
# ----------------------------------------------------------------------
class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # the daemon's stdout is for the operator, not per-request spam

    # -- helpers -------------------------------------------------------
    def _send_json(self, payload: dict, status: int = 200) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, body: bytes, status: int = 200) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/jsonl")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    @property
    def _service(self) -> SweepService:
        return self.server.service  # type: ignore[attr-defined]

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        path, _, query = self.path.partition("?")
        if path == "/health":
            self._send_json({"ok": True})
            return
        if path == "/stats":
            self._send_json(self._service.stats())
            return
        if path.startswith("/jobs/"):
            parts = path.split("/")
            job_id = parts[2] if len(parts) > 2 else ""
            if len(parts) == 4 and parts[3] == "trace":
                offset = 0
                for pair in query.split("&"):
                    name, _, value = pair.partition("=")
                    if name == "offset" and value.isdigit():
                        offset = int(value)
                body = self._service.trace_bytes(job_id, offset)
                if body is None:
                    self._send_json({"error": "no trace"}, status=404)
                else:
                    self._send_text(body)
                return
            job = self._service.job(job_id)
            if job is None:
                self._send_json({"error": "unknown job"}, status=404)
            else:
                self._send_json(job.describe())
            return
        self._send_json({"error": "unknown path"}, status=404)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/shutdown":
            self._send_json({"stopping": True})
            # Shut down from another thread: this handler must finish its
            # response before the server loop exits.
            threading.Thread(
                target=self.server.shutdown, daemon=True
            ).start()
            return
        if self.path != "/jobs":
            self._send_json({"error": "unknown path"}, status=404)
            return
        length = int(self.headers.get("Content-Length", "0"))
        try:
            request = json.loads(self.rfile.read(length) or b"{}")
        except ValueError:
            self._send_json({"error": "bad JSON body"}, status=400)
            return
        answer = self._service.submit(request)
        if "rejected" in answer:
            self._send_json(answer, status=429)
        else:
            self._send_json(answer, status=202)


def build_server(
    host: str = "127.0.0.1",
    port: int = 0,
    service: Optional[SweepService] = None,
    **service_kwargs,
) -> ThreadingHTTPServer:
    """An HTTP server wired to a (started) :class:`SweepService`.

    The caller owns the loop: run ``serve_forever()`` (blocking) or drive
    it from a thread in tests; ``server.service`` reaches the core.
    """
    server = ThreadingHTTPServer((host, port), _Handler)
    server.daemon_threads = True
    server.service = (  # type: ignore[attr-defined]
        service if service is not None else SweepService(**service_kwargs)
    )
    server.service.start()
    return server


def run_server(server: ThreadingHTTPServer) -> None:
    """Blocking serve loop with a graceful drain on exit."""
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.service.shutdown(wait=True)  # type: ignore[attr-defined]
        server.server_close()
