"""BLIF reader/writer (the interchange format of SIS/ABC/VTR flows).

Supports the combinational subset: ``.model``, ``.inputs``, ``.outputs``,
``.names`` with PLA-style single-output covers, and constants (``.names y``
with an empty or ``1``-only cover).  Covers may use both on-set (``1``) and
off-set (``0``) output polarity.
"""

from __future__ import annotations

from typing import Optional, TextIO

from repro.errors import LogicError, NetworkError, ParseError
from repro.io._names import gate_names
from repro.logic.cubes import Cube, isop
from repro.logic.truthtable import TruthTable
from repro.network.network import Network


def _join_continuations(text: str) -> list[tuple[int, str]]:
    """Logical lines with their starting line numbers ('\\' continuation)."""
    lines: list[tuple[int, str]] = []
    pending = ""
    pending_start = 0
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].rstrip()
        if not pending:
            pending_start = number
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        pending += line
        if pending.strip():
            lines.append((pending_start, pending.strip()))
        pending = ""
    if pending.strip():
        lines.append((pending_start, pending.strip()))
    return lines


def _cover_to_table(
    rows: list[tuple[str, str]], num_vars: int, line: int
) -> TruthTable:
    """Build the function from PLA cover rows (inputs pattern, output bit)."""
    if not rows:
        return TruthTable.const(num_vars, False)
    polarities = {out for _, out in rows}
    if len(polarities) > 1:
        raise ParseError("mixed output polarities in one cover", line)
    polarity = polarities.pop()
    if polarity not in ("0", "1"):
        raise ParseError(f"bad cover output {polarity!r}", line)
    accum = TruthTable.const(num_vars, False)
    for pattern, _ in rows:
        if len(pattern) != num_vars:
            raise ParseError(
                f"cover row {pattern!r} does not match {num_vars} inputs", line
            )
        literals: list[Optional[int]] = []
        for ch in pattern:
            if ch == "-":
                literals.append(None)
            elif ch in "01":
                literals.append(int(ch))
            else:
                raise ParseError(f"bad cover character {ch!r}", line)
        accum = accum | Cube.from_literals(literals).to_truthtable()
    return accum if polarity == "1" else ~accum


def parse_blif(text: str) -> Network:
    """Parse BLIF text into a network.

    Every malformed input fails with :class:`ParseError` carrying the line
    number of the offending (or referencing) line — lower-level
    ``LogicError``/``NetworkError`` never escape.
    """
    lines = _join_continuations(text)
    model_name = "blif"
    inputs: list[tuple[str, int]] = []
    outputs: list[tuple[str, int]] = []
    names_blocks: list[tuple[int, list[str], list[tuple[str, str]]]] = []
    current: Optional[tuple[int, list[str], list[tuple[str, str]]]] = None

    for number, line in lines:
        if line.startswith("."):
            current = None
            tokens = line.split()
            directive = tokens[0]
            if directive == ".model":
                model_name = tokens[1] if len(tokens) > 1 else "blif"
            elif directive == ".inputs":
                inputs.extend((name, number) for name in tokens[1:])
            elif directive == ".outputs":
                outputs.extend((name, number) for name in tokens[1:])
            elif directive == ".names":
                if len(tokens) < 2:
                    raise ParseError(".names needs at least an output", number)
                current = (number, tokens[1:], [])
                names_blocks.append(current)
            elif directive == ".end":
                break
            elif directive in (".latch", ".subckt"):
                raise ParseError(f"unsupported directive {directive}", number)
            # Silently ignore other dot-directives (.default_input_arrival...)
        else:
            if current is None:
                raise ParseError(f"unexpected line {line!r}", number)
            tokens = line.split()
            if len(current[1]) == 1:
                # Constant node: cover rows are just the output bit.
                if len(tokens) != 1 or tokens[0] not in ("0", "1"):
                    raise ParseError(f"bad constant cover {line!r}", number)
                current[2].append(("", tokens[0]))
            else:
                if len(tokens) != 2:
                    raise ParseError(f"bad cover row {line!r}", number)
                current[2].append((tokens[0], tokens[1]))

    network = Network(model_name)
    node_of: dict[str, int] = {}
    for name, number in inputs:
        if name not in node_of:
            try:
                node_of[name] = network.add_pi(name)
            except (LogicError, NetworkError) as exc:
                raise ParseError(str(exc), number) from exc

    # Resolve .names blocks in dependency order.
    block_of_output = {}
    for block in names_blocks:
        number, signals, rows = block
        block_of_output[signals[-1]] = block

    resolving: set[str] = set()

    def resolve(name: str, ref_line: int) -> int:
        if name in node_of:
            return node_of[name]
        if name not in block_of_output:
            raise ParseError(f"undefined signal {name!r}", ref_line)
        if name in resolving:
            raise ParseError(
                f"combinational cycle through {name!r}",
                block_of_output[name][0],
            )
        resolving.add(name)
        number, signals, rows = block_of_output[name]
        fanin_names = signals[:-1]
        fanins = [resolve(f, number) for f in fanin_names]
        try:
            table = _cover_to_table(rows, len(fanin_names), number)
            node_of[name] = network.add_gate(table, fanins, name)
        except (LogicError, NetworkError) as exc:
            raise ParseError(str(exc), number) from exc
        resolving.discard(name)
        return node_of[name]

    for name, number in outputs:
        try:
            network.add_po(resolve(name, number), name)
        except (LogicError, NetworkError) as exc:
            raise ParseError(str(exc), number) from exc
    return network


def read_blif(path) -> Network:
    """Read a BLIF file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_blif(handle.read())


def write_blif(network: Network, handle: TextIO) -> None:
    """Write a network as BLIF (one ``.names`` cover per gate)."""
    handle.write(f".model {network.name}\n")
    pi_names = [network.node(pi).label() for pi in network.pis]
    handle.write(".inputs " + " ".join(pi_names) + "\n")
    po_labels = [name for name, _ in network.pos]
    handle.write(".outputs " + " ".join(po_labels) + "\n")

    names = gate_names(network)

    def signal(uid: int) -> str:
        return names[uid]

    def ref(uid: int) -> str:
        node = network.node(uid)
        return node.label() if node.is_pi else signal(uid)

    for node in network.gates():
        handle.write(
            ".names "
            + " ".join(ref(f) for f in node.fanins)
            + (" " if node.fanins else "")
            + signal(node.uid)
            + "\n"
        )
        if node.is_const:
            if node.table.bits:
                handle.write("1\n")
            continue
        for cube in isop(node.table):
            pattern = "".join(
                "-" if lit is None else str(lit) for lit in cube.literals()
            )
            handle.write(f"{pattern} 1\n")
    for po_name, uid in network.pos:
        if ref(uid) != po_name:
            handle.write(f".names {ref(uid)} {po_name}\n1 1\n")
    handle.write(".end\n")


def blif_text(network: Network) -> str:
    """The BLIF serialization as a string."""
    import io

    buffer = io.StringIO()
    write_blif(network, buffer)
    return buffer.getvalue()
