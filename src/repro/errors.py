"""Exception hierarchy for the repro (SimGen) library.

Every error raised by the library derives from :class:`ReproError`, so a
downstream user can catch one type to guard a whole flow.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class LogicError(ReproError):
    """Invalid truth-table / cube operation (bad arity, bad literal, ...)."""


class NetworkError(ReproError):
    """Structural problem in a Boolean network (cycle, dangling fanin, ...)."""


class ParseError(ReproError):
    """Malformed input file (BLIF / BENCH)."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class SimulationError(ReproError):
    """Inconsistent simulation request (width mismatch, unknown node, ...)."""


class SatError(ReproError):
    """Malformed CNF or solver misuse."""


class SweepError(ReproError):
    """Inconsistent sweeping state."""


class MappingError(ReproError):
    """LUT mapping failure (infeasible cut size, unmapped node, ...)."""


class GenerationError(ReproError):
    """Pattern-generation failure that indicates misuse (not a mere conflict)."""
