"""repro — a full reproduction of *SimGen: Simulation Pattern Generation
for Efficient Equivalence Checking* (DATE 2025).

The package layers, bottom-up:

* :mod:`repro.logic` — truth tables, cubes/rows with don't-cares, ISOP.
* :mod:`repro.network` — Boolean-network DAG, cones, MFFCs.
* :mod:`repro.io` — BLIF / ISCAS .bench readers and writers.
* :mod:`repro.simulation` — bit-parallel circuit simulation.
* :mod:`repro.sat` — a CDCL SAT solver and Tseitin/miter encodings.
* :mod:`repro.mapping` — K-feasible cuts and LUT mapping (``if -K 6``).
* :mod:`repro.transforms` — strash, function-preserving rewrites, putontop.
* :mod:`repro.sweep` — equivalence classes, SAT sweeping, CEC.
* :mod:`repro.core` — **SimGen**: implication/decision-driven vector
  generation (Algorithm 1), plus the random and reverse-simulation
  baselines.
* :mod:`repro.benchgen` — the 42-benchmark synthetic suite.
* :mod:`repro.experiments` — harnesses regenerating every table and figure.

Quickstart::

    from repro.benchgen import sweep_instance
    from repro.core import make_generator
    from repro.sweep import SweepEngine, SweepConfig

    network = sweep_instance("apex2")
    simgen = make_generator("AI+DC+MFFC", network, seed=1)
    engine = SweepEngine(network, simgen, SweepConfig(iterations=20))
    result = engine.run()
    print(result.metrics.sat_calls, "SAT calls,",
          len(result.equivalences), "equivalences proven")
"""

__version__ = "1.0.0"

from repro.errors import (
    GenerationError,
    LogicError,
    MappingError,
    NetworkError,
    ParseError,
    ReproError,
    SatError,
    SimulationError,
    SweepError,
)

__all__ = [
    "GenerationError",
    "LogicError",
    "MappingError",
    "NetworkError",
    "ParseError",
    "ReproError",
    "SatError",
    "SimulationError",
    "SweepError",
    "__version__",
]
