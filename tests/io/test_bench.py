""".bench parsing and writing."""

import pytest

from repro.errors import ParseError
from repro.io.bench import bench_text, parse_bench
from repro.simulation import cone_function
from tests.conftest import networks_equal, random_network

SIMPLE = """\
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(f)
t = AND(a, b)
f = OR(t, c)
"""


class TestParse:
    def test_structure(self):
        net = parse_bench(SIMPLE)
        assert len(net.pis) == 3
        assert [name for name, _ in net.pos] == ["f"]
        assert net.num_gates == 2

    def test_function(self):
        net = parse_bench(SIMPLE)
        table, _ = cone_function(net, net.pos[0][1])
        for m in range(8):
            a, b, c = m & 1, (m >> 1) & 1, (m >> 2) & 1
            assert table.output_for(m) == ((a & b) | c)

    @pytest.mark.parametrize(
        "kind,fn",
        [
            ("NAND", lambda a, b: 1 - (a & b)),
            ("NOR", lambda a, b: 1 - (a | b)),
            ("XOR", lambda a, b: a ^ b),
            ("XNOR", lambda a, b: 1 - (a ^ b)),
        ],
    )
    def test_gate_kinds(self, kind, fn):
        text = f"INPUT(a)\nINPUT(b)\nOUTPUT(f)\nf = {kind}(a, b)\n"
        net = parse_bench(text)
        table, _ = cone_function(net, net.pos[0][1])
        for m in range(4):
            assert table.output_for(m) == fn(m & 1, (m >> 1) & 1)

    def test_not_and_buf(self):
        text = "INPUT(a)\nOUTPUT(f)\nOUTPUT(g)\nf = NOT(a)\ng = BUF(a)\n"
        net = parse_bench(text)
        t_f, _ = cone_function(net, net.pos[0][1])
        t_g, _ = cone_function(net, net.pos[1][1])
        assert t_f.bits == 0b01
        assert t_g.bits == 0b10

    def test_lut_form(self):
        text = "INPUT(a)\nINPUT(b)\nOUTPUT(f)\nf = LUT 0x8 (a, b)\n"
        net = parse_bench(text)
        table, _ = cone_function(net, net.pos[0][1])
        assert table.bits == 0x8  # AND

    def test_comments_and_blanks(self):
        text = "# header\n\nINPUT(a)\nOUTPUT(f)\nf = NOT(a)  # inverter\n"
        net = parse_bench(text)
        assert net.num_gates == 1

    def test_undefined_signal(self):
        with pytest.raises(ParseError):
            parse_bench("OUTPUT(f)\nf = AND(a, b)\n")

    def test_cycle(self):
        text = "INPUT(a)\nOUTPUT(f)\nf = AND(g, a)\ng = NOT(f)\n"
        with pytest.raises(ParseError):
            parse_bench(text)

    def test_unknown_gate(self):
        with pytest.raises(ParseError):
            parse_bench("INPUT(a)\nOUTPUT(f)\nf = FLUX(a)\n")


class TestRoundtrip:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_network_roundtrip(self, seed):
        net = random_network(seed=seed)
        parsed = parse_bench(bench_text(net))
        assert len(parsed.pis) == len(net.pis)
        assert networks_equal(net, parsed)

    def test_mapped_network_roundtrip(self):
        from repro.benchgen import build_benchmark
        from repro.mapping import map_to_luts

        net, _ = map_to_luts(build_benchmark("alu4"))
        parsed = parse_bench(bench_text(net))
        assert networks_equal(net, parsed)
