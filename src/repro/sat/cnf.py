"""CNF formulas in DIMACS convention.

Literals are non-zero ints: ``v`` is the positive literal of variable ``v``
(1-based), ``-v`` its negation.  The container is deliberately dumb — the
solver and the Tseitin encoder hold the logic.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional

from repro.errors import SatError


class Cnf:
    """A CNF formula: a variable count and a list of clauses."""

    def __init__(self, num_vars: int = 0):
        if num_vars < 0:
            raise SatError("num_vars must be >= 0")
        self.num_vars = num_vars
        self.clauses: list[tuple[int, ...]] = []

    def new_var(self) -> int:
        """Allocate and return a fresh variable."""
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, literals: Iterable[int]) -> None:
        """Append a clause; grows ``num_vars`` if literals exceed it."""
        clause = tuple(literals)
        for lit in clause:
            if lit == 0:
                raise SatError("literal 0 is not allowed")
            self.num_vars = max(self.num_vars, abs(lit))
        self.clauses.append(clause)

    def extend(self, clauses: Iterable[Iterable[int]]) -> None:
        """Append many clauses."""
        for clause in clauses:
            self.add_clause(clause)

    def __len__(self) -> int:
        return len(self.clauses)

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        return iter(self.clauses)

    # ------------------------------------------------------------------
    def evaluate(self, model: Mapping[int, bool]) -> bool:
        """True if the model satisfies every clause."""
        for clause in self.clauses:
            if not any(
                model.get(abs(lit), False) == (lit > 0) for lit in clause
            ):
                return False
        return True

    def brute_force(self) -> Optional[dict[int, bool]]:
        """Exhaustive SAT check; returns a model or ``None``.

        Exponential — test/validation use only (``num_vars`` capped at 20).
        """
        if self.num_vars > 20:
            raise SatError("brute_force capped at 20 variables")
        for bits in range(1 << self.num_vars):
            model = {v: bool((bits >> (v - 1)) & 1) for v in range(1, self.num_vars + 1)}
            if self.evaluate(model):
                return model
        return None

    # ------------------------------------------------------------------
    def to_dimacs(self) -> str:
        """Serialize in DIMACS CNF format."""
        lines = [f"p cnf {self.num_vars} {len(self.clauses)}"]
        for clause in self.clauses:
            lines.append(" ".join(str(lit) for lit in clause) + " 0")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_dimacs(cls, text: str) -> "Cnf":
        """Parse DIMACS CNF text."""
        cnf: Optional[Cnf] = None
        pending: list[int] = []
        for raw in text.splitlines():
            line = raw.strip()
            if not line or line.startswith("c"):
                continue
            if line.startswith("p"):
                parts = line.split()
                if len(parts) != 4 or parts[1] != "cnf":
                    raise SatError(f"bad DIMACS header: {line!r}")
                cnf = cls(int(parts[2]))
                continue
            if cnf is None:
                raise SatError("clause before DIMACS header")
            for token in line.split():
                lit = int(token)
                if lit == 0:
                    cnf.add_clause(pending)
                    pending = []
                else:
                    pending.append(lit)
        if cnf is None:
            raise SatError("missing DIMACS header")
        if pending:
            cnf.add_clause(pending)
        return cnf
