"""Graceful degradation: deadlines and interrupts yield sound partial results."""

import time

import pytest

from repro.runtime import Budget
from repro.sweep import SweepConfig, SweepEngine
from repro.sweep.cec import check_equivalence
from repro.sweep.checker import PairChecker
from repro.sat.solver import SatResult
from tests.runtime.conftest import assert_equivalences_sound, parity_pair_network


def hard_network():
    """Three 14-input parity pairs: on the reference solver an unbudgeted
    unbounded sweep takes several seconds (~11k conflicts), so a 1-second
    deadline reliably fires mid-SAT-phase.  The arena-backed compiled core
    clears the same conflicts in tens of milliseconds, so deadline tests
    pin ``sat_backend="reference"`` to keep the instance slow; the compiled
    core's budget polling is covered by the expiry-identity fuzz suite in
    ``tests/sat/test_compiled.py``."""
    return parity_pair_network(n=14, pairs=3)


class TestDeadline:
    def test_one_second_deadline_returns_partial_result_in_time(self):
        net = hard_network()
        config = SweepConfig(
            seed=3,
            sat_conflict_limit=None,
            budget=Budget(seconds=1.0),
            sat_backend="reference",
        )
        engine = SweepEngine(net, None, config)
        start = time.perf_counter()
        result = engine.run()
        elapsed = time.perf_counter() - start
        assert elapsed < 1.5, f"overran the deadline by {elapsed - 1.0:.2f}s"
        metrics = result.metrics
        assert metrics.deadline_expired
        assert not metrics.interrupted
        # Whatever was proven before the cut is genuinely equivalent, and
        # re-verifies UNSAT with a fresh unbounded checker.
        assert_equivalences_sound(net, result.equivalences)
        fresh = PairChecker(net, conflict_limit=None)
        for rep, member, complemented in result.equivalences:
            outcome, _ = fresh.check(rep, member, complemented)
            assert outcome is SatResult.UNSAT
        # The unresolved pairs are reported, not guessed.
        assert metrics.proven + metrics.disproven + metrics.unknown >= 0
        assert metrics.sat_calls >= metrics.proven + metrics.disproven

    def test_zero_deadline_stops_before_guided_iterations(self):
        net = parity_pair_network(n=6)
        config = SweepConfig(seed=3, budget=Budget(seconds=0.0))
        engine = SweepEngine(net, None, config)
        classes, metrics = engine.run_simulation_phase()
        assert len(metrics.cost_history) >= 1
        result = engine.run_sat_phase(classes, metrics)
        assert result.metrics.deadline_expired
        assert result.metrics.sat_calls == 0
        assert result.equivalences == []

    def test_expired_run_is_never_reported_different_by_cec(self):
        # Ground truth: identical circuits. A timed-out CEC must degrade to
        # "inconclusive", never flip to "different".
        net = parity_pair_network(n=10)
        config = SweepConfig(
            seed=3, sat_conflict_limit=None, budget=Budget(seconds=0.0)
        )
        result = check_equivalence(net, net, config=config)
        assert result.verdict == "inconclusive"
        assert not result.conclusive
        assert not result.equivalent
        assert set(result.outputs.values()) == {"unknown"}

    def test_unbudgeted_cec_on_same_instance_is_conclusive(self):
        net = parity_pair_network(n=6)
        result = check_equivalence(net, net, config=SweepConfig(seed=3))
        assert result.verdict == "equivalent"
        assert result.conclusive


class _InterruptAfter:
    """Observer that raises KeyboardInterrupt on the n-th matching event."""

    def __init__(self, phase: str, count: int):
        self.phase = phase
        self.count = count

    def __call__(self, phase, step, cost):
        if phase == self.phase:
            self.count -= 1
            if self.count <= 0:
                raise KeyboardInterrupt


class TestInterrupt:
    def test_interrupt_in_sat_phase_returns_sound_partial_result(self):
        net = parity_pair_network(n=6, pairs=4)
        engine = SweepEngine(
            net, None, SweepConfig(seed=3), observer=_InterruptAfter("sat", 2)
        )
        result = engine.run()
        assert result.metrics.interrupted
        assert result.metrics.sat_calls <= 2
        assert_equivalences_sound(net, result.equivalences)

    def test_interrupt_in_simulation_phase_skips_sat(self):
        net = parity_pair_network(n=6)
        engine = SweepEngine(
            net,
            None,
            SweepConfig(seed=3),
            observer=_InterruptAfter("random", 1),
        )
        result = engine.run()
        assert result.metrics.interrupted
        assert result.metrics.sat_calls == 0
        assert result.equivalences == []

    def test_interrupted_cec_reports_unknown_outputs(self):
        net = parity_pair_network(n=6, pairs=2)
        config = SweepConfig(seed=3)
        with pytest.MonkeyPatch.context() as mp:
            calls = {"n": 0}
            original = PairChecker.check

            def exploding_check(self, *args, **kwargs):
                calls["n"] += 1
                if calls["n"] > 1:
                    raise KeyboardInterrupt
                return original(self, *args, **kwargs)

            mp.setattr(PairChecker, "check", exploding_check)
            result = check_equivalence(net, net, config=config)
        assert result.verdict in ("equivalent", "inconclusive")
        assert "different" not in result.outputs.values()
